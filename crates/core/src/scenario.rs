//! Multi-failure × demand-uncertainty scenario engine (beyond the paper).
//!
//! The paper (and the §8 evaluation) scores restoration against
//! single-fiber cuts. This module sweeps *scenario sets* — every
//! k-subset of fibers up to an enumeration budget, seeded sampled
//! k-cuts when the subset space is too large, and multiplicative
//! demand-uncertainty perturbations in the spirit of robust IP/optical
//! design — and folds the per-scenario outcomes into an
//! [`AvailabilitySurface`]: for every (k, spare-transponder budget)
//! cell, how many scenarios the backbone survived, how much capacity
//! came back, and which rung of the degradation ladder delivered it.
//!
//! **Evaluation ladder.** Each scenario is scored exactly like a churn
//! tick (DESIGN.md §10): the top rung is a warm mutation of a standing
//! [`PlanModel`] ([`PlanModel::restore_after_cut`] — multi-fiber
//! pin/ban/re-solve, attached via [`ScenarioEngine::attach_exact`];
//! nominal demand only, since the standing model is built for the
//! nominal demand set), falling back to the greedy §8 heuristic
//! ([`restore_cached`]) and finally to pre-provisioned 1+1 protection
//! ([`ProtectedPlan::capability_under`]). The rung that produced each
//! cell's outcome is recorded in its ladder histogram.
//!
//! **Spare budgets are allowances, not obligations.** The cell at
//! budget `s` reports the best outcome achievable with *at most* `s`
//! extra spare transponders per link (a running maximum over the
//! ascending budget axis), so availability is monotone non-decreasing
//! in the spare budget by construction — the greedy restorer itself is
//! not guaranteed monotone under spectrum contention, an operator
//! deploying fewer spares is always admissible.
//!
//! **Determinism.** Scenario enumeration is lexicographic, sampling is
//! seeded ([`ChaCha8Rng`]), and the evaluation fans out on the
//! deterministic pool ([`flexwan_util::pool::par_map`]: fixed chunking,
//! index-slot reassembly) over pure per-item work with a shared
//! [`RouteCache`] that memoizes but never alters results. The surface
//! is byte-identical at any thread count.

use std::collections::HashSet;

use flexwan_solver::SolveOptions;
use flexwan_topo::cache::RouteCache;
use flexwan_topo::graph::{EdgeId, Graph};
use flexwan_topo::ip::IpTopology;
use flexwan_util::pool;
use flexwan_util::rng::ChaCha8Rng;

use crate::planning::{plan_cached, Plan, PlanModel, PlannerConfig};
use crate::protect::{plan_protected_cached, ProtectedPlan};
use crate::restore::{restore_cached, FailureScenario};
use crate::scheme::Scheme;

/// Ladder rung 0: warm mutation of the standing exact model.
pub const LEVEL_EXACT: usize = 0;
/// Ladder rung 1: greedy §8 heuristic restoration.
pub const LEVEL_HEURISTIC: usize = 1;
/// Ladder rung 2: pre-provisioned 1+1 protection.
pub const LEVEL_PROTECT: usize = 2;

/// `C(n, k)` saturating at `u128::MAX` (enumeration-budget checks only).
fn n_choose_k(n: usize, k: usize) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        acc = acc.saturating_mul((n - i) as u128) / (i as u128 + 1);
    }
    acc
}

/// Every exactly-`k`-fiber-cut scenario, in lexicographic fiber-index
/// order, uniformly weighted. For `k = 1` this is exactly
/// [`one_fiber_scenarios`](crate::restore::one_fiber_scenarios) — same
/// ids, same cut sets, same probabilities — which is what lets the
/// surface's k=1 column be cross-checked against the existing
/// single-cut restoration sweep.
pub fn k_cut_scenarios(g: &Graph, k: usize) -> Vec<FailureScenario> {
    let n = g.num_edges();
    assert!(k >= 1 && k <= n, "k must be in 1..=num_edges");
    let ids: Vec<EdgeId> = g.edges().iter().map(|e| e.id).collect();
    let mut subsets: Vec<Vec<EdgeId>> = Vec::new();
    let mut idx: Vec<usize> = (0..k).collect();
    loop {
        subsets.push(idx.iter().map(|&i| ids[i]).collect());
        // Next lexicographic combination of {0..n} choose k.
        let mut i = k;
        loop {
            if i == 0 {
                let total = subsets.len();
                return subsets
                    .into_iter()
                    .enumerate()
                    .map(|(id, cuts)| FailureScenario {
                        id,
                        cuts,
                        probability: 1.0 / total as f64,
                    })
                    .collect();
            }
            i -= 1;
            if idx[i] != i + n - k {
                idx[i] += 1;
                for j in i + 1..k {
                    idx[j] = idx[j - 1] + 1;
                }
                break;
            }
        }
    }
}

/// Up to `n` *distinct* seeded k-fiber-cut scenarios, uniformly
/// weighted. Each draw takes `k` distinct fibers by a partial
/// Fisher–Yates shuffle of the edge ids; duplicate subsets are
/// rejected, so the returned set never repeats a cut set (and may be
/// shorter than `n` when the subset space is nearly exhausted).
/// Deterministic for a given `(g, k, n, seed)`.
pub fn sampled_k_cut_scenarios(g: &Graph, k: usize, n: usize, seed: u64) -> Vec<FailureScenario> {
    let edges = g.num_edges();
    assert!(k >= 1 && k <= edges, "k must be in 1..=num_edges");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut pool_ids: Vec<EdgeId> = g.edges().iter().map(|e| e.id).collect();
    let mut seen: HashSet<Vec<EdgeId>> = HashSet::new();
    let mut subsets: Vec<Vec<EdgeId>> = Vec::new();
    let mut attempts = 0usize;
    let max_attempts = n * 32 + 64;
    while subsets.len() < n && attempts < max_attempts {
        attempts += 1;
        for i in 0..k {
            let j = rng.gen_range(i..pool_ids.len());
            pool_ids.swap(i, j);
        }
        let mut cuts: Vec<EdgeId> = pool_ids[..k].to_vec();
        cuts.sort_unstable_by_key(|e| e.0);
        if seen.insert(cuts.clone()) {
            subsets.push(cuts);
        }
    }
    let total = subsets.len();
    subsets
        .into_iter()
        .enumerate()
        .map(|(id, cuts)| FailureScenario {
            id,
            cuts,
            probability: 1.0 / total as f64,
        })
        .collect()
}

/// The scenario suite for a surface: per `k ∈ 1..=k_max`, the full
/// lexicographic enumeration when `C(num_edges, k)` fits inside
/// `exhaustive_limit`, otherwise `samples` seeded distinct k-cuts (the
/// per-k seed is derived from `seed` so adding a k row never reshuffles
/// another row's sample).
pub fn scenario_suite(
    g: &Graph,
    k_max: usize,
    exhaustive_limit: usize,
    samples: usize,
    seed: u64,
) -> Vec<(usize, Vec<FailureScenario>)> {
    (1..=k_max)
        .map(|k| {
            let set = if n_choose_k(g.num_edges(), k) <= exhaustive_limit as u128 {
                k_cut_scenarios(g, k)
            } else {
                let k_seed = seed ^ (k as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                sampled_k_cut_scenarios(g, k, samples, k_seed)
            };
            (k, set)
        })
        .collect()
}

/// A multiplicative demand perturbation: one factor per IP link, in
/// link order. Factor 1.0 everywhere is the nominal demand set.
#[derive(Debug, Clone, PartialEq)]
pub struct DemandScenario {
    /// Scenario index within its set (0 = nominal).
    pub id: usize,
    /// Per-link multiplicative factors, `ip.links()` order.
    pub factors: Vec<f64>,
}

impl DemandScenario {
    /// The nominal (unperturbed) demand scenario.
    pub fn nominal(ip: &IpTopology) -> DemandScenario {
        DemandScenario {
            id: 0,
            factors: vec![1.0; ip.num_links()],
        }
    }

    /// Whether every factor is exactly 1.0 (the exact rung only runs on
    /// the nominal demand — the standing model was built for it).
    pub fn is_nominal(&self) -> bool {
        self.factors.iter().all(|&f| f == 1.0)
    }

    /// The perturbed topology: each link's demand scaled by its factor
    /// and rounded to the planner's 100 Gbps demand grid (never below
    /// 100 — demands must stay positive multiples of 100).
    pub fn apply(&self, ip: &IpTopology) -> IpTopology {
        assert_eq!(self.factors.len(), ip.num_links());
        let mut out = IpTopology::new();
        for (l, &f) in ip.links().iter().zip(&self.factors) {
            let units = (l.demand_gbps as f64 * f / 100.0).round().max(1.0) as u64;
            out.add_link(l.src, l.dst, units * 100);
        }
        out
    }
}

/// The nominal scenario plus `n` seeded multiplicative perturbations
/// with per-link factors uniform in `[1 − spread, 1 + spread]`.
/// Deterministic for a given `(ip, n, spread, seed)`.
pub fn demand_scenarios(ip: &IpTopology, n: usize, spread: f64, seed: u64) -> Vec<DemandScenario> {
    assert!((0.0..1.0).contains(&spread), "spread must be in [0, 1)");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut out = vec![DemandScenario::nominal(ip)];
    for id in 1..=n {
        let factors = (0..ip.num_links())
            .map(|_| 1.0 + spread * (2.0 * rng.gen_f64() - 1.0))
            .collect();
        out.push(DemandScenario { id, factors });
    }
    out
}

/// Engine knobs.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Spare-transponder budgets, strictly increasing. Budget `s` adds
    /// up to `s` spares on every IP link (an allowance — see module
    /// docs for the monotonicity contract).
    pub spare_budgets: Vec<u32>,
    /// Pool workers for the scenario fan-out (0 = auto, 1 = serial).
    /// The surface is byte-identical at any value.
    pub threads: usize,
    /// Options for every warm mutation on the attached exact model.
    pub solve: SolveOptions,
    /// Arm the 1+1 protection rung (a [`ProtectedPlan`] per demand
    /// scenario, consulted when the upper rungs under-restore).
    pub protection: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            spare_budgets: vec![0, 1, 2, 4],
            threads: 0,
            solve: SolveOptions::default(),
            protection: true,
        }
    }
}

/// One (k, spare-budget) cell of the surface, aggregated over every
/// cut scenario × demand scenario evaluated for that k.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SurfaceCell {
    /// Simultaneous cut count of the row's scenario set.
    pub k: usize,
    /// Spare-transponder allowance per link.
    pub spare_budget: u32,
    /// Scenario evaluations aggregated into this cell.
    pub scenarios: u64,
    /// Evaluations that kept every affected Gbps alive.
    pub survived: u64,
    /// Total capacity the cuts took down, Gbps.
    pub affected_gbps: u64,
    /// Total capacity revived (or held by protection), Gbps.
    pub restored_gbps: u64,
    /// Evaluations whose outcome came from ladder rung 0/1/2.
    pub level_scenarios: [u64; 3],
}

impl SurfaceCell {
    /// Fraction of evaluations survived.
    pub fn availability(&self) -> f64 {
        if self.scenarios == 0 {
            1.0
        } else {
            self.survived as f64 / self.scenarios as f64
        }
    }
}

/// The availability surface: cells in row-major order (k ascending,
/// then spare budget ascending).
#[derive(Debug, Clone, PartialEq)]
pub struct AvailabilitySurface {
    /// The spare-budget axis, ascending.
    pub budgets: Vec<u32>,
    /// The cells, row-major (k, then budget).
    pub cells: Vec<SurfaceCell>,
}

impl AvailabilitySurface {
    /// The cell at `(k, spare_budget)`, if evaluated.
    pub fn cell(&self, k: usize, spare_budget: u32) -> Option<&SurfaceCell> {
        self.cells
            .iter()
            .find(|c| c.k == k && c.spare_budget == spare_budget)
    }

    /// Canonical text rendering: one availability row per k plus a
    /// per-cell detail block. Byte-stable across thread counts and
    /// machines; golden tests and the CI sweep gate pin it verbatim.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        writeln!(
            out,
            "availability surface: survived/scenarios (availability) per k cuts x spare budget"
        )
        .expect("write to String");
        let mut header = format!("{:<6}", "k");
        for b in &self.budgets {
            header.push_str(&format!(" | {:>14}", format!("spares+{b}")));
        }
        writeln!(out, "{header}").expect("write to String");
        let ks: Vec<usize> = {
            let mut ks: Vec<usize> = self.cells.iter().map(|c| c.k).collect();
            ks.dedup();
            ks
        };
        for &k in &ks {
            let mut row = format!("k={k:<4}");
            for &b in &self.budgets {
                let c = self.cell(k, b).expect("row-major surface is complete");
                row.push_str(&format!(
                    " | {:>14}",
                    format!("{}/{} {:.3}", c.survived, c.scenarios, c.availability())
                ));
            }
            writeln!(out, "{row}").expect("write to String");
        }
        writeln!(out).expect("write to String");
        writeln!(
            out,
            "cells: restored/affected Gbps and ladder levels (warm/heuristic/protect)"
        )
        .expect("write to String");
        for c in &self.cells {
            writeln!(
                out,
                "k={} spares+{}: restored {}/{} Gbps, levels {}/{}/{}",
                c.k,
                c.spare_budget,
                c.restored_gbps,
                c.affected_gbps,
                c.level_scenarios[LEVEL_EXACT],
                c.level_scenarios[LEVEL_HEURISTIC],
                c.level_scenarios[LEVEL_PROTECT],
            )
            .expect("write to String");
        }
        out
    }
}

/// The outcome of one (cut scenario, demand scenario, budget)
/// evaluation after ladder selection and budget-allowance folding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Outcome {
    level: usize,
    affected_gbps: u64,
    restored_gbps: u64,
}

/// The scenario engine: a scheme + backbone + shared route cache, with
/// an optional standing exact model on top. See the module docs for
/// the ladder and determinism contracts.
pub struct ScenarioEngine<'a> {
    scheme: Scheme,
    optical: &'a Graph,
    ip: &'a IpTopology,
    cfg: &'a PlannerConfig,
    cache: &'a RouteCache,
    config: EngineConfig,
    exact: Option<PlanModel>,
}

impl<'a> ScenarioEngine<'a> {
    /// A new engine over `optical`/`ip` for `scheme`. Candidate routes
    /// (planning and every cut set's detours) are served by `cache`,
    /// shared freely with other sweeps — memoization never changes
    /// results.
    pub fn new(
        scheme: Scheme,
        optical: &'a Graph,
        ip: &'a IpTopology,
        cfg: &'a PlannerConfig,
        cache: &'a RouteCache,
        config: EngineConfig,
    ) -> Self {
        assert!(
            !config.spare_budgets.is_empty()
                && config.spare_budgets.windows(2).all(|w| w[0] < w[1]),
            "spare budgets must be non-empty and strictly increasing"
        );
        ScenarioEngine {
            scheme,
            optical,
            ip,
            cfg,
            cache,
            config,
            exact: None,
        }
    }

    /// Attaches a standing exact model (built on the *nominal* demand
    /// set) as the ladder's top rung: each nominal-demand scenario is
    /// first tried as a warm multi-fiber mutation
    /// ([`PlanModel::restore_after_cut`]), falling back to the greedy
    /// heuristic when the mutation fails. Perturbed-demand scenarios
    /// stay on the heuristic rung — the standing model's demand rows
    /// do not match theirs.
    ///
    /// The model must hold a solved baseline
    /// ([`PlanModel::solve`](crate::planning::PlanModel::solve) has
    /// succeeded): warm mutations pin survivors of the *standing*
    /// solution, and with no incumbent every mutation fails back to
    /// the heuristic rung.
    pub fn attach_exact(&mut self, model: PlanModel) {
        self.exact = Some(model);
    }

    /// Evaluates every (cut scenario × demand scenario × spare budget)
    /// and folds the outcomes into the availability surface. `cut_sets`
    /// is the suite shape of [`scenario_suite`]: `(k, scenarios)` rows,
    /// one surface row per entry. Byte-identical at any
    /// [`EngineConfig::threads`] value.
    pub fn evaluate(
        &mut self,
        cut_sets: &[(usize, Vec<FailureScenario>)],
        demands: &[DemandScenario],
    ) -> AvailabilitySurface {
        assert!(!demands.is_empty(), "need at least the nominal demand");
        let (optical, cfg, cache) = (self.optical, self.cfg, self.cache);
        let budgets = self.config.spare_budgets.clone();
        let n_links = self.ip.num_links();

        // One planned world per demand scenario (serial, order-fixed).
        let worlds: Vec<(IpTopology, Plan, Option<ProtectedPlan>)> = demands
            .iter()
            .map(|d| {
                let ip_d = d.apply(self.ip);
                let plan_d = plan_cached(self.scheme, optical, &ip_d, cfg, cache);
                let prot_d = self
                    .config
                    .protection
                    .then(|| plan_protected_cached(self.scheme, optical, &ip_d, cfg, cache));
                (ip_d, plan_d, prot_d)
            })
            .collect();

        // Flat deterministic item order: set, scenario, demand, budget
        // (budget innermost so the allowance fold works on contiguous
        // runs).
        let mut items: Vec<(usize, usize, usize, usize)> = Vec::new();
        for (si, (_, scens)) in cut_sets.iter().enumerate() {
            for ci in 0..scens.len() {
                for di in 0..demands.len() {
                    for bi in 0..budgets.len() {
                        items.push((si, ci, di, bi));
                    }
                }
            }
        }

        // Pure rungs (heuristic, protection) fanned out on the pool.
        let mut outcomes: Vec<Outcome> =
            pool::par_map(&items, self.config.threads, |&(si, ci, di, bi)| {
                let scen = &cut_sets[si].1[ci];
                let (ip_d, plan_d, prot_d) = &worlds[di];
                let extra = vec![budgets[bi]; n_links];
                let r = restore_cached(plan_d, optical, ip_d, scen, &extra, cfg, cache);
                let mut o = Outcome {
                    level: LEVEL_HEURISTIC,
                    affected_gbps: r.affected_gbps,
                    restored_gbps: r.restored_gbps,
                };
                protect_rung(&mut o, prot_d.as_ref(), ip_d, scen);
                o
            });

        // Exact rung: warm mutations of the standing model, serially
        // (the model is mutated in place and fully reverted per
        // scenario, so the order carries no state across items).
        if let Some(model) = self.exact.as_mut() {
            for (pos, &(si, ci, di, bi)) in items.iter().enumerate() {
                if !demands[di].is_nominal() {
                    continue;
                }
                let scen = &cut_sets[si].1[ci];
                let extra = vec![budgets[bi]; n_links];
                if let Some(mr) = model.restore_after_cut(optical, scen, &extra, &self.config.solve)
                {
                    let o = &mut outcomes[pos];
                    *o = Outcome {
                        level: LEVEL_EXACT,
                        affected_gbps: mr.affected_gbps,
                        restored_gbps: mr.restored_gbps,
                    };
                    let (ip_d, _, prot_d) = &worlds[di];
                    protect_rung(o, prot_d.as_ref(), ip_d, scen);
                }
            }
        }

        // Budget-allowance fold: each contiguous run is one (scenario,
        // demand) across the ascending budgets; a smaller budget's
        // better outcome carries forward (see module docs).
        for run in outcomes.chunks_mut(budgets.len()) {
            for i in 1..run.len() {
                if run[i - 1].restored_gbps > run[i].restored_gbps {
                    run[i].restored_gbps = run[i - 1].restored_gbps;
                    run[i].level = run[i - 1].level;
                }
            }
        }

        // Aggregate row-major cells.
        let mut cells: Vec<SurfaceCell> = Vec::with_capacity(cut_sets.len() * budgets.len());
        for (si, (k, _)) in cut_sets.iter().enumerate() {
            for (bi, &b) in budgets.iter().enumerate() {
                cells.push(SurfaceCell {
                    k: *k,
                    spare_budget: b,
                    scenarios: 0,
                    survived: 0,
                    affected_gbps: 0,
                    restored_gbps: 0,
                    level_scenarios: [0; 3],
                });
                let cell = cells.last_mut().expect("just pushed");
                for (&(isi, _, _, ibi), o) in items.iter().zip(&outcomes) {
                    if isi != si || ibi != bi {
                        continue;
                    }
                    cell.scenarios += 1;
                    cell.affected_gbps += o.affected_gbps;
                    cell.restored_gbps += o.restored_gbps;
                    cell.level_scenarios[o.level] += 1;
                    if o.restored_gbps == o.affected_gbps {
                        cell.survived += 1;
                    }
                }
            }
        }
        AvailabilitySurface { budgets, cells }
    }
}

/// The protection rung: when the selected rung under-restored and the
/// 1+1 plan fully covers the scenario's working losses, the scenario
/// survives on reserved capacity — no computation, like a churn tick
/// landing on `LADDER_PROTECT`.
fn protect_rung(
    o: &mut Outcome,
    prot: Option<&ProtectedPlan>,
    ip: &IpTopology,
    scen: &FailureScenario,
) {
    if o.restored_gbps < o.affected_gbps {
        if let Some(p) = prot {
            if p.capability_under(ip, scen) >= 1.0 {
                o.level = LEVEL_PROTECT;
                o.restored_gbps = o.affected_gbps;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::restore::one_fiber_scenarios;
    use flexwan_optical::spectrum::SpectrumGrid;

    /// 4-node world with detour diversity (same shape as the churn
    /// soak backbone).
    fn world() -> (Graph, IpTopology, PlannerConfig) {
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        let d = g.add_node("d");
        g.add_edge(a, b, 400);
        g.add_edge(b, c, 400);
        g.add_edge(a, c, 900);
        g.add_edge(c, d, 400);
        g.add_edge(a, d, 900);
        let mut ip = IpTopology::new();
        ip.add_link(a, c, 300);
        ip.add_link(a, d, 200);
        let cfg = PlannerConfig {
            grid: SpectrumGrid::new(24),
            k_paths: 2,
            ..Default::default()
        };
        (g, ip, cfg)
    }

    #[test]
    fn k_cut_enumeration_is_lexicographic_and_complete() {
        let (g, _, _) = world();
        let s1 = k_cut_scenarios(&g, 1);
        assert_eq!(s1.len(), 5);
        // k=1 must equal the §8 single-fiber set, element for element.
        let base = one_fiber_scenarios(&g);
        assert_eq!(s1, base);
        let s2 = k_cut_scenarios(&g, 2);
        assert_eq!(s2.len(), 10, "C(5,2)");
        for w in s2.windows(2) {
            assert!(w[0].cuts < w[1].cuts, "lexicographic order");
        }
        let s5 = k_cut_scenarios(&g, 5);
        assert_eq!(s5.len(), 1);
        assert_eq!(s5[0].cuts.len(), 5);
    }

    #[test]
    fn sampled_cuts_are_distinct_sorted_and_seeded() {
        let (g, _, _) = world();
        let a = sampled_k_cut_scenarios(&g, 2, 6, 42);
        let b = sampled_k_cut_scenarios(&g, 2, 6, 42);
        assert_eq!(a, b, "same seed, same sample");
        let mut seen = HashSet::new();
        for s in &a {
            assert_eq!(s.cuts.len(), 2);
            assert!(s.cuts[0].0 < s.cuts[1].0, "sorted cut set");
            assert!(seen.insert(s.cuts.clone()), "duplicate subset");
        }
        assert_ne!(a, sampled_k_cut_scenarios(&g, 2, 6, 43));
    }

    #[test]
    fn suite_switches_to_sampling_past_the_limit() {
        let (g, _, _) = world();
        let suite = scenario_suite(&g, 3, 6, 4, 7);
        assert_eq!(suite.len(), 3);
        assert_eq!(suite[0].1.len(), 5, "C(5,1)=5 <= 6: exhaustive");
        assert_eq!(suite[1].1.len(), 4, "C(5,2)=10 > 6: sampled");
        assert_eq!(suite[2].1.len(), 4, "C(5,3)=10 > 6: sampled");
    }

    #[test]
    fn demand_scenarios_are_seeded_and_bounded() {
        let (_, ip, _) = world();
        let d = demand_scenarios(&ip, 3, 0.2, 11);
        assert_eq!(d.len(), 4);
        assert!(d[0].is_nominal());
        assert_eq!(d[0].apply(&ip).links(), ip.links());
        for s in &d[1..] {
            assert!(!s.is_nominal());
            for &f in &s.factors {
                assert!((0.8..=1.2).contains(&f));
            }
        }
        assert_eq!(d, demand_scenarios(&ip, 3, 0.2, 11));
    }

    #[test]
    fn k1_column_matches_direct_single_cut_sweep() {
        let (g, ip, cfg) = world();
        let cache = RouteCache::new();
        let mut engine = ScenarioEngine::new(
            Scheme::FlexWan,
            &g,
            &ip,
            &cfg,
            &cache,
            EngineConfig {
                spare_budgets: vec![0],
                ..Default::default()
            },
        );
        let suite = vec![(1, k_cut_scenarios(&g, 1))];
        let demands = vec![DemandScenario::nominal(&ip)];
        let surface = engine.evaluate(&suite, &demands);
        let cell = surface.cell(1, 0).expect("k=1 cell");

        let plan = plan_cached(Scheme::FlexWan, &g, &ip, &cfg, &cache);
        let mut affected = 0u64;
        let mut restored = 0u64;
        for s in &one_fiber_scenarios(&g) {
            let r = restore_cached(&plan, &g, &ip, s, &[], &cfg, &cache);
            affected += r.affected_gbps;
            restored += r.restored_gbps;
        }
        assert_eq!(cell.affected_gbps, affected);
        // Protection can only hold *more* capacity than the heuristic
        // revived; with it disarmed the totals must match exactly.
        let mut bare = ScenarioEngine::new(
            Scheme::FlexWan,
            &g,
            &ip,
            &cfg,
            &cache,
            EngineConfig {
                spare_budgets: vec![0],
                protection: false,
                ..Default::default()
            },
        );
        let bare_cell_surface = bare.evaluate(&suite, &demands);
        let bare_cell = bare_cell_surface.cell(1, 0).expect("k=1 cell");
        assert_eq!(bare_cell.restored_gbps, restored);
        assert_eq!(bare_cell.affected_gbps, affected);
        assert!(cell.restored_gbps >= restored);
    }

    #[test]
    fn surface_is_thread_count_invariant_and_budget_monotone() {
        let (g, ip, cfg) = world();
        let cache = RouteCache::new();
        let suite = scenario_suite(&g, 2, 16, 8, 3);
        let demands = demand_scenarios(&ip, 2, 0.25, 9);
        let render = |threads: usize| {
            let mut engine = ScenarioEngine::new(
                Scheme::FlexWan,
                &g,
                &ip,
                &cfg,
                &cache,
                EngineConfig {
                    spare_budgets: vec![0, 1, 3],
                    threads,
                    ..Default::default()
                },
            );
            engine.evaluate(&suite, &demands).render()
        };
        let one = render(1);
        assert_eq!(one, render(2), "2 threads diverged");
        assert_eq!(one, render(4), "4 threads diverged");
        // Budget monotonicity (the allowance fold makes it structural).
        let mut engine = ScenarioEngine::new(
            Scheme::FlexWan,
            &g,
            &ip,
            &cfg,
            &cache,
            EngineConfig {
                spare_budgets: vec![0, 1, 3],
                ..Default::default()
            },
        );
        let surface = engine.evaluate(&suite, &demands);
        for k in [1usize, 2] {
            for w in [(0u32, 1u32), (1, 3)] {
                let lo = surface.cell(k, w.0).expect("cell");
                let hi = surface.cell(k, w.1).expect("cell");
                assert!(hi.survived >= lo.survived, "survived dipped at k={k}");
                assert!(
                    hi.restored_gbps >= lo.restored_gbps,
                    "restored dipped at k={k}"
                );
            }
        }
    }

    #[test]
    fn exact_rung_runs_on_nominal_demand_and_is_recorded() {
        let (g, ip, cfg) = world();
        let cache = RouteCache::new();
        let mut engine = ScenarioEngine::new(
            Scheme::FlexWan,
            &g,
            &ip,
            &cfg,
            &cache,
            EngineConfig {
                spare_budgets: vec![0],
                protection: false,
                ..Default::default()
            },
        );
        let mut pm = PlanModel::build_restorable(Scheme::FlexWan, &g, &ip, &cfg);
        pm.solve(&SolveOptions::default())
            .expect("world is feasible");
        engine.attach_exact(pm);
        let suite = vec![(1, k_cut_scenarios(&g, 1))];
        let demands = demand_scenarios(&ip, 1, 0.2, 5);
        let surface = engine.evaluate(&suite, &demands);
        let cell = surface.cell(1, 0).expect("cell");
        // 5 nominal evaluations land on the exact rung, 5 perturbed on
        // the heuristic rung.
        assert_eq!(cell.level_scenarios[LEVEL_EXACT], 5);
        assert_eq!(cell.level_scenarios[LEVEL_HEURISTIC], 5);
        assert_eq!(cell.level_scenarios[LEVEL_PROTECT], 0);
    }

    #[test]
    fn n_choose_k_basics() {
        assert_eq!(n_choose_k(5, 1), 5);
        assert_eq!(n_choose_k(5, 2), 10);
        assert_eq!(n_choose_k(5, 5), 1);
        assert_eq!(n_choose_k(4, 5), 0);
        assert_eq!(n_choose_k(60, 3), 34220);
    }
}
