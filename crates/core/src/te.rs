//! IP-layer traffic engineering: what the optical layer's capacity is
//! *for*.
//!
//! §8 motivates restoration through the IP layer: "The higher restored
//! capacity always reduces the loss of network traffic and the network
//! can achieve higher network availability under failures." This module
//! closes that loop: given the IP-link capacities a plan (or a
//! post-failure restoration) provides, it routes a traffic matrix with a
//! path-based multi-commodity-flow LP (solved by `flexwan-solver`) and
//! reports how much traffic the network can actually carry — the
//! *maximum concurrent flow* `α` (every demand satisfied to fraction α)
//! and the maximum total throughput.
//!
//! The TE formulation follows the classical path-based MCF used by WAN
//! TE systems [32, 33]; candidate IP routes come from KSP over the IP
//! topology, exactly as optical candidate paths come from KSP over the
//! fiber topology.

use std::collections::HashSet;

use flexwan_solver::{Model, Sense, Status};
use flexwan_topo::graph::{Graph, NodeId};
use flexwan_topo::ksp::k_shortest_paths;
use flexwan_topo::path::Path;

use crate::opt::FlowVarSpace;

/// A traffic demand between two routers (distinct from an IP *link*
/// demand: traffic may ride several IP links in sequence).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficDemand {
    /// Ingress router.
    pub src: NodeId,
    /// Egress router.
    pub dst: NodeId,
    /// Offered load, Gbps.
    pub gbps: f64,
}

/// The IP-layer network as the TE solver sees it: routers and capacitated
/// IP links (capacities come from the optical plan).
#[derive(Debug, Clone)]
pub struct IpNetwork {
    /// IP topology: nodes are routers, edges are IP links; edge "length"
    /// is 1 (hop count routing metric).
    pub graph: Graph,
    /// Capacity of each IP link (indexed by edge id), Gbps.
    pub capacity_gbps: Vec<f64>,
}

impl IpNetwork {
    /// Builds an IP network from router count and capacitated links.
    pub fn new(num_routers: usize, links: &[(NodeId, NodeId, f64)]) -> Self {
        let mut graph = Graph::new();
        for i in 0..num_routers {
            graph.add_node(format!("r{i}"));
        }
        let mut capacity = Vec::with_capacity(links.len());
        for &(a, b, cap) in links {
            assert!(cap >= 0.0, "capacity cannot be negative");
            graph.add_edge(a, b, 1); // hop metric
            capacity.push(cap);
        }
        IpNetwork {
            graph,
            capacity_gbps: capacity,
        }
    }
}

/// A TE routing outcome.
#[derive(Debug, Clone)]
pub struct TeOutcome {
    /// Maximum concurrent-flow fraction: every demand is satisfiable to
    /// this fraction simultaneously (≥ 1.0 means all traffic fits).
    pub alpha: f64,
    /// Maximum total throughput when demands may be satisfied unevenly,
    /// Gbps (each demand capped at its offered load).
    pub max_throughput_gbps: f64,
    /// Total offered load, Gbps.
    pub offered_gbps: f64,
}

impl TeOutcome {
    /// Fraction of offered traffic carried under max-throughput routing.
    pub fn carried_fraction(&self) -> f64 {
        if self.offered_gbps == 0.0 {
            1.0
        } else {
            self.max_throughput_gbps / self.offered_gbps
        }
    }
}

/// Routes `traffic` over `net` using up to `k` candidate paths per
/// demand. Returns `None` when some demand has no path at all (the IP
/// topology is partitioned for it).
pub fn route_traffic(net: &IpNetwork, traffic: &[TrafficDemand], k: usize) -> Option<TeOutcome> {
    assert!(k >= 1);
    let offered: f64 = traffic.iter().map(|d| d.gbps).sum();
    if traffic.is_empty() {
        return Some(TeOutcome {
            alpha: f64::INFINITY,
            max_throughput_gbps: 0.0,
            offered_gbps: 0.0,
        });
    }
    let none = HashSet::new();
    let mut paths_per_demand: Vec<Vec<Path>> = Vec::with_capacity(traffic.len());
    for d in traffic {
        let paths = k_shortest_paths(&net.graph, d.src, d.dst, k, &none);
        if paths.is_empty() {
            return None;
        }
        paths_per_demand.push(paths);
    }

    // --- Max concurrent flow: maximize α s.t. per-demand flow = α·d. ---
    let alpha = {
        let mut m = Model::new();
        let alpha = m.nonneg("alpha");
        let flows = FlowVarSpace::enumerate(&mut m, &paths_per_demand, net.graph.num_edges());
        // Demand satisfaction: Σ_j f_ij = α·d_i  ⇔  Σ f − d·α = 0.
        m.group("demand");
        for (i, d) in traffic.iter().enumerate() {
            m.eq(flows.demand_expr(i) - d.gbps * alpha, 0.0);
        }
        // Capacity per IP link.
        m.group("capacity");
        for e in net.graph.edges() {
            let expr = flows.edge_expr(e.id);
            if !expr.terms.is_empty() {
                m.le(expr, net.capacity_gbps[e.id.0 as usize]);
            }
        }
        m.end_group();
        m.set_objective(Sense::Maximize, 1.0 * alpha);
        let sol = m.solve();
        match sol.status {
            Status::Optimal => sol.objective,
            Status::Unbounded => f64::INFINITY, // zero-demand edge cases
            _ => return None,
        }
    };

    // --- Max throughput: maximize Σ carried, carried_i ≤ d_i. ---
    let max_throughput = {
        let mut m = Model::new();
        let flows = FlowVarSpace::enumerate(&mut m, &paths_per_demand, net.graph.num_edges());
        m.group("demand");
        for (i, d) in traffic.iter().enumerate() {
            m.le(flows.demand_expr(i), d.gbps);
        }
        m.group("capacity");
        for e in net.graph.edges() {
            let expr = flows.edge_expr(e.id);
            if !expr.terms.is_empty() {
                m.le(expr, net.capacity_gbps[e.id.0 as usize]);
            }
        }
        m.end_group();
        m.set_objective(Sense::Maximize, flows.total_expr());
        let sol = m.solve();
        match sol.status {
            Status::Optimal => sol.objective,
            _ => return None,
        }
    };

    Some(TeOutcome {
        alpha,
        max_throughput_gbps: max_throughput,
        offered_gbps: offered,
    })
}

/// The marginal value of capacity on each IP link: the dual (shadow
/// price) of the link's capacity constraint in the max-throughput LP —
/// "how much more traffic would one extra Gbps on this link carry?".
/// Links whose capacity constraint is slack price at zero. The classic
/// where-to-build-next signal for network planners.
pub fn link_capacity_values(
    net: &IpNetwork,
    traffic: &[TrafficDemand],
    k: usize,
) -> Option<Vec<f64>> {
    assert!(k >= 1);
    if traffic.is_empty() {
        return Some(vec![0.0; net.graph.num_edges()]);
    }
    let none = HashSet::new();
    let mut paths_per_demand: Vec<Vec<Path>> = Vec::with_capacity(traffic.len());
    for d in traffic {
        let paths = k_shortest_paths(&net.graph, d.src, d.dst, k, &none);
        if paths.is_empty() {
            return None;
        }
        paths_per_demand.push(paths);
    }
    let mut m = Model::new();
    let flows = FlowVarSpace::enumerate(&mut m, &paths_per_demand, net.graph.num_edges());
    m.group("demand");
    for (i, d) in traffic.iter().enumerate() {
        m.le(flows.demand_expr(i), d.gbps);
    }
    // One capacity row per edge under the named "capacity" group, in edge
    // order; duals are extracted through the group's row handles instead
    // of by raw row position.
    let capacity_group = m.group("capacity");
    for e in net.graph.edges() {
        // Emit the row even when empty so the group stays edge-aligned.
        m.le(flows.edge_expr(e.id), net.capacity_gbps[e.id.0 as usize]);
    }
    m.end_group();
    m.set_objective(Sense::Maximize, flows.total_expr());
    let (sol, duals) = flexwan_solver::solve_lp_with_duals(&m);
    if sol.status != Status::Optimal {
        return None;
    }
    let duals = duals?;
    Some(
        m.group_duals(capacity_group, &duals)
            .into_iter()
            .map(|(_, y)| y)
            .collect(),
    )
}

/// Builds the [`IpNetwork`] provided by a plan — optionally after a
/// failure scenario with a given restoration: each IP link's capacity is
/// the sum of its surviving plus restored wavelengths' data rates.
pub fn network_from_plan(
    num_routers: usize,
    ip: &flexwan_topo::ip::IpTopology,
    plan: &crate::planning::Plan,
    failure: Option<(
        &crate::restore::FailureScenario,
        &crate::restore::Restoration,
    )>,
) -> IpNetwork {
    let mut capacity = vec![0.0f64; ip.num_links()];
    for w in &plan.wavelengths {
        let alive = match failure {
            Some((scenario, _)) => !w.path.edges.iter().any(|e| scenario.cuts.contains(e)),
            None => true,
        };
        if alive {
            capacity[w.link.0 as usize] += f64::from(w.format.data_rate_gbps);
        }
    }
    if let Some((_, restoration)) = failure {
        for rw in &restoration.restored {
            capacity[rw.wavelength.link.0 as usize] +=
                f64::from(rw.wavelength.format.data_rate_gbps);
        }
    }
    let links: Vec<(NodeId, NodeId, f64)> = ip
        .links()
        .iter()
        .map(|l| (l.src, l.dst, capacity[l.id.0 as usize]))
        .collect();
    IpNetwork::new(num_routers, &links)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Square IP network: 4 routers, unit-ish capacities.
    fn square(cap: f64) -> IpNetwork {
        IpNetwork::new(
            4,
            &[
                (NodeId(0), NodeId(1), cap),
                (NodeId(1), NodeId(2), cap),
                (NodeId(2), NodeId(3), cap),
                (NodeId(3), NodeId(0), cap),
            ],
        )
    }

    #[test]
    fn single_demand_two_paths() {
        // 0→2 can split over 0-1-2 and 0-3-2: total 200 over 100-capacity
        // links.
        let net = square(100.0);
        let t = [TrafficDemand {
            src: NodeId(0),
            dst: NodeId(2),
            gbps: 150.0,
        }];
        let out = route_traffic(&net, &t, 3).unwrap();
        assert!((out.max_throughput_gbps - 150.0).abs() < 1e-6);
        assert!(out.alpha > 1.3, "alpha {} should be 200/150", out.alpha);
        assert!((out.alpha - 200.0 / 150.0).abs() < 1e-6);
    }

    #[test]
    fn saturation_caps_alpha() {
        let net = square(100.0);
        let t = [TrafficDemand {
            src: NodeId(0),
            dst: NodeId(2),
            gbps: 400.0,
        }];
        let out = route_traffic(&net, &t, 3).unwrap();
        assert!((out.alpha - 0.5).abs() < 1e-6);
        assert!((out.max_throughput_gbps - 200.0).abs() < 1e-6);
        assert!((out.carried_fraction() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn competing_demands_share_fairly() {
        // Two demands crossing the same links in opposite corners.
        let net = square(100.0);
        let t = [
            TrafficDemand {
                src: NodeId(0),
                dst: NodeId(2),
                gbps: 100.0,
            },
            TrafficDemand {
                src: NodeId(1),
                dst: NodeId(3),
                gbps: 100.0,
            },
        ];
        let out = route_traffic(&net, &t, 3).unwrap();
        // Total ring capacity 400; both demands bidirectionally share it:
        // each can get 100 concurrently (α = 1) but not more than 2.
        assert!(out.alpha >= 1.0 - 1e-9, "alpha {}", out.alpha);
        assert!(out.alpha <= 2.0 + 1e-9);
        assert!((out.max_throughput_gbps - 200.0).abs() < 1e-6);
    }

    #[test]
    fn zero_capacity_link_blocks() {
        let mut net = square(100.0);
        net.capacity_gbps[0] = 0.0; // kill 0–1
        let t = [TrafficDemand {
            src: NodeId(0),
            dst: NodeId(2),
            gbps: 150.0,
        }];
        let out = route_traffic(&net, &t, 3).unwrap();
        // Only the 0-3-2 side remains.
        assert!((out.max_throughput_gbps - 100.0).abs() < 1e-6);
    }

    #[test]
    fn disconnected_demand_is_none() {
        let net = IpNetwork::new(3, &[(NodeId(0), NodeId(1), 100.0)]);
        let t = [TrafficDemand {
            src: NodeId(0),
            dst: NodeId(2),
            gbps: 10.0,
        }];
        assert!(route_traffic(&net, &t, 2).is_none());
    }

    #[test]
    fn empty_traffic_trivially_satisfied() {
        let net = square(10.0);
        let out = route_traffic(&net, &[], 2).unwrap();
        assert_eq!(out.max_throughput_gbps, 0.0);
        assert_eq!(out.carried_fraction(), 1.0);
    }

    #[test]
    fn capacity_values_price_the_bottleneck() {
        // One saturated link on the only path: its shadow price is 1
        // (one more Gbps carries one more Gbps); slack links price 0.
        let net = IpNetwork::new(
            3,
            &[
                (NodeId(0), NodeId(1), 100.0),
                (NodeId(1), NodeId(2), 1000.0),
            ],
        );
        let t = [TrafficDemand {
            src: NodeId(0),
            dst: NodeId(2),
            gbps: 500.0,
        }];
        let values = link_capacity_values(&net, &t, 2).unwrap();
        assert!((values[0] - 1.0).abs() < 1e-6, "{values:?}");
        assert!(values[1].abs() < 1e-6, "{values:?}");
    }

    #[test]
    fn capacity_values_zero_when_uncongested() {
        let net = square(1000.0);
        let t = [TrafficDemand {
            src: NodeId(0),
            dst: NodeId(2),
            gbps: 100.0,
        }];
        let values = link_capacity_values(&net, &t, 3).unwrap();
        assert!(values.iter().all(|v| v.abs() < 1e-6), "{values:?}");
    }

    #[test]
    fn network_from_plan_maps_capacity_and_failure() {
        use crate::planning::{plan, PlannerConfig};
        use crate::restore::{restore, FailureScenario};
        use crate::Scheme;
        use flexwan_optical::spectrum::SpectrumGrid;
        use flexwan_topo::graph::EdgeId;
        use flexwan_topo::ip::IpTopology;

        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        g.add_edge(a, b, 600);
        g.add_edge(a, c, 600);
        g.add_edge(c, b, 600);
        let mut ip = IpTopology::new();
        ip.add_link(a, b, 300);
        let cfg = PlannerConfig {
            grid: SpectrumGrid::new(96),
            ..Default::default()
        };
        let p = plan(Scheme::FlexWan, &g, &ip, &cfg);

        // Healthy: the link has its provisioned 300 G.
        let net = network_from_plan(g.num_nodes(), &ip, &p, None);
        assert_eq!(net.capacity_gbps, vec![300.0]);

        // Cut the primary without restoration: capacity 0.
        let scenario = FailureScenario {
            id: 0,
            cuts: vec![EdgeId(0)],
            probability: 1.0,
        };
        let r = restore(&p, &g, &ip, &scenario, &[], &cfg);
        let dead = network_from_plan(
            g.num_nodes(),
            &ip,
            &p,
            Some((
                &scenario,
                &crate::restore::Restoration {
                    restored: vec![],
                    ..r.clone()
                },
            )),
        );
        assert_eq!(dead.capacity_gbps, vec![0.0]);

        // With restoration: FlexWAN revives the full 300 G (§3.3).
        let alive = network_from_plan(g.num_nodes(), &ip, &p, Some((&scenario, &r)));
        assert_eq!(alive.capacity_gbps, vec![300.0]);
    }
}
