//! Spectrum defragmentation: hitless retuning to make room.
//!
//! Long-lived flex-grid networks fragment: free pixels exist but no
//! contiguous run is wide enough for a new wavelength. Because FlexWAN's
//! OLS passbands and SVT spacings are software-defined (§4.2–§4.3), the
//! controller can *retune* existing wavelengths — make-before-break, so
//! each moved wavelength's new channel must be free while its old channel
//! is still live — to consolidate free spectrum. This module implements
//! the greedy window-clearing defragmenter used by the planner's
//! optional defrag mode and the `ablation_defrag` experiment.

use flexwan_optical::spectrum::{PixelRange, PixelWidth};
use flexwan_topo::graph::{EdgeId, Graph};
use flexwan_topo::route::Route;

use crate::planning::spectrum::SpectrumState;
use crate::wavelength::Wavelength;

/// One hitless retuning step.
#[derive(Debug, Clone, PartialEq)]
pub struct RetuneStep {
    /// Index of the moved wavelength in the plan's wavelength list.
    pub wavelength: usize,
    /// Channel before the move.
    pub from: PixelRange,
    /// Channel after the move (disjoint from `from`: make-before-break).
    pub to: PixelRange,
}

/// The outcome of a successful defragmentation.
#[derive(Debug, Clone)]
pub struct DefragOutcome {
    /// Retuning steps executed, in order.
    pub steps: Vec<RetuneStep>,
    /// The channel freed for the new wavelength.
    pub channel: PixelRange,
    /// The chosen fiber per hop of the new wavelength's route.
    pub chosen_fibers: Vec<EdgeId>,
}

/// Tries to make room for a `width`-wide channel along `route` by
/// retuning at most `max_moves` existing wavelengths; on success the
/// moves are applied to `spectrum`/`wavelengths` and the cleared channel
/// is **allocated** on the returned fibers.
///
/// Returns `None` (state untouched) when no window can be cleared within
/// the move budget.
pub fn make_room(
    spectrum: &mut SpectrumState,
    wavelengths: &mut [Wavelength],
    route: &Route,
    width: PixelWidth,
    align: u32,
    max_moves: usize,
    optical: &Graph,
) -> Option<DefragOutcome> {
    assert!(align >= 1);
    let pixels = spectrum.grid().pixels();
    let need = u32::from(width.pixels());
    if need > pixels {
        return None;
    }

    let mut start = 0u32;
    while start + need <= pixels {
        let window = PixelRange::new(start, width);
        if let Some(outcome) = try_window(spectrum, wavelengths, route, &window, max_moves, optical)
        {
            return Some(outcome);
        }
        start += align;
    }
    None
}

/// Attempts to clear one window: pick per hop the fiber with the fewest
/// blockers, check the blocker budget, then retune each blocker
/// make-before-break. All-or-nothing: failures roll back.
fn try_window(
    spectrum: &mut SpectrumState,
    wavelengths: &mut [Wavelength],
    route: &Route,
    window: &PixelRange,
    max_moves: usize,
    optical: &Graph,
) -> Option<DefragOutcome> {
    // Choose fibers and collect blockers.
    let mut chosen: Vec<EdgeId> = Vec::with_capacity(route.hops.len());
    let mut blockers: Vec<usize> = Vec::new();
    for hop in &route.hops {
        let best = hop
            .iter()
            .map(|&e| {
                let b: Vec<usize> = wavelengths
                    .iter()
                    .enumerate()
                    .filter(|(_, w)| w.path.uses_edge(e) && w.channel.overlaps(window))
                    .map(|(i, _)| i)
                    .collect();
                (e, b)
            })
            .min_by_key(|(_, b)| b.len())?;
        chosen.push(best.0);
        for i in best.1 {
            if !blockers.contains(&i) {
                blockers.push(i);
            }
        }
    }
    if blockers.len() > max_moves {
        return None;
    }

    let one_px_path = |e: EdgeId| {
        flexwan_topo::path::Path::new(optical, vec![optical.edge(e).a, optical.edge(e).b], vec![e])
    };
    // Guard every currently-free window pixel on the chosen fibers so no
    // retuned blocker can land inside the window there. Guards are
    // per-pixel because blockers may cover the window only partially.
    let mut guards: Vec<(EdgeId, u32)> = Vec::new();
    let guard_free = |spectrum: &mut SpectrumState, guards: &mut Vec<(EdgeId, u32)>| {
        for &e in &chosen {
            for px in window.pixels() {
                let r = PixelRange::new(px, PixelWidth::new(1));
                if spectrum.mask(e).is_free(&r) {
                    spectrum
                        .occupy_exact(&one_px_path(e), &r)
                        .expect("pixel free");
                    guards.push((e, px));
                }
            }
        }
    };
    guard_free(spectrum, &mut guards);

    let rollback = |spectrum: &mut SpectrumState,
                    wavelengths: &mut [Wavelength],
                    steps: &[RetuneStep],
                    guards: &[(EdgeId, u32)]| {
        // Guards go first: they may sit on pixels the moved wavelengths
        // are about to re-occupy.
        for &(e, px) in guards {
            spectrum.release(&one_px_path(e), &PixelRange::new(px, PixelWidth::new(1)));
        }
        for step in steps.iter().rev() {
            let w = &mut wavelengths[step.wavelength];
            spectrum.release(&w.path, &step.to);
            spectrum
                .occupy_exact(&w.path, &step.from)
                .expect("rollback to original channel");
            w.channel = step.from;
        }
    };

    // Retune each blocker make-before-break: the new channel is searched
    // while the old one is still occupied (so old ∩ new = ∅ by
    // construction), with window pixels guarded against re-entry.
    let mut steps: Vec<RetuneStep> = Vec::new();
    for &bi in &blockers {
        let (path, from, w_width) = {
            let w = &wavelengths[bi];
            (w.path.clone(), w.channel, w.channel.width)
        };
        let masks: Vec<&flexwan_optical::spectrum::SpectrumMask> =
            path.edges.iter().map(|e| spectrum.mask(*e)).collect();
        let target = flexwan_optical::spectrum::SpectrumMask::first_fit_joint(&masks, w_width);
        let Some(to) = target else {
            rollback(spectrum, wavelengths, &steps, &guards);
            return None;
        };
        debug_assert!(!to.overlaps(&from), "make-before-break violated");
        spectrum
            .occupy_exact(&path, &to)
            .expect("first-fit target is free");
        spectrum.release(&path, &from);
        wavelengths[bi].channel = to;
        steps.push(RetuneStep {
            wavelength: bi,
            from,
            to,
        });
        // Guard the window pixels this blocker just vacated.
        guard_free(spectrum, &mut guards);
    }

    // The window is clear iff every (chosen fiber, window pixel) is ours.
    let expected = chosen.len() * usize::from(window.width.pixels());
    if guards.len() != expected {
        rollback(spectrum, wavelengths, &steps, &guards);
        return None;
    }

    // The guards collectively *are* the allocation: the window is now
    // occupied on exactly the chosen fibers.
    Some(DefragOutcome {
        steps,
        channel: *window,
        chosen_fibers: chosen,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexwan_optical::format::TransponderFormat;
    use flexwan_optical::spectrum::SpectrumGrid;
    use flexwan_topo::ip::IpLinkId;
    use flexwan_topo::route::k_shortest_routes;

    fn w(px: u16) -> PixelWidth {
        PixelWidth::new(px)
    }

    /// One fiber a–b of 20 px with two 4-px wavelengths at [2..6) and
    /// [11..15): free runs of 2, 5 and 5 px — fragmented, but with room
    /// for a hitless move.
    fn fragmented() -> (Graph, SpectrumState, Vec<Wavelength>, Route) {
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let e = g.add_edge(a, b, 100);
        let mut s = SpectrumState::new(SpectrumGrid::new(20), 1);
        let path = flexwan_topo::path::Path::new(&g, vec![a, b], vec![e]);
        let mk = |start: u32| Wavelength {
            link: IpLinkId(0),
            path_index: 0,
            path: path.clone(),
            format: TransponderFormat::derive(100, w(4), 3000),
            channel: PixelRange::new(start, w(4)),
        };
        let wl = vec![mk(2), mk(11)];
        for x in &wl {
            s.occupy_exact(&x.path, &x.channel).unwrap();
        }
        let route = k_shortest_routes(&g, a, b, 1, &Default::default()).remove(0);
        (g, s, wl, route)
    }

    #[test]
    fn defrag_clears_a_window() {
        let (g, mut s, mut wl, route) = fragmented();
        // An 8-px channel cannot fit without moves…
        assert!(s.find_route(&route, w(8), 1).is_none());
        // …but one retune makes room.
        let out = make_room(&mut s, &mut wl, &route, w(8), 1, 2, &g).expect("defrag succeeds");
        assert!(!out.steps.is_empty());
        // The returned channel is allocated and consistent.
        assert_eq!(out.channel.width, w(8));
        // No overlaps among the new layout.
        for (i, a) in wl.iter().enumerate() {
            assert!(
                !a.channel.overlaps(&out.channel),
                "wavelength {i} overlaps new channel"
            );
            for b in &wl[i + 1..] {
                assert!(!a.channel.overlaps(&b.channel));
            }
        }
        // Make-before-break: every step's target disjoint from its source.
        for st in &out.steps {
            assert!(!st.from.overlaps(&st.to));
        }
    }

    #[test]
    fn budget_zero_only_succeeds_without_blockers() {
        let (g, mut s, mut wl, route) = fragmented();
        assert!(make_room(&mut s, &mut wl, &route, w(8), 1, 0, &g).is_none());
        // A 3-px channel fits without any move (free run [6..11)).
        let out = make_room(&mut s, &mut wl, &route, w(3), 1, 0, &g).expect("fits as-is");
        assert!(out.steps.is_empty());
        // Free runs are [0..2), [6..11), [15..20): the first 3-px run
        // starts at 6.
        assert_eq!(out.channel.start, 6);
    }

    #[test]
    fn impossible_when_spectrum_truly_full() {
        let (g, mut s, mut wl, route) = fragmented();
        // Ask for 13 px: total free is 12 px — impossible with any moves.
        let before_s = s.clone();
        let before_wl = wl.clone();
        assert!(make_room(&mut s, &mut wl, &route, w(13), 1, 4, &g).is_none());
        // State untouched on failure.
        assert_eq!(s.total_occupied_ghz(), before_s.total_occupied_ghz());
        assert_eq!(wl, before_wl);
    }

    #[test]
    fn full_pack_with_two_moves() {
        // 12 px + two 4-px wavelengths = the whole 20-px fiber: succeeding
        // requires relocating *both* wavelengths to the band edges. Along
        // the way several windows fail mid-move, exercising rollback.
        let (g, mut s, mut wl, route) = fragmented();
        let out = make_room(&mut s, &mut wl, &route, w(12), 1, 4, &g).expect("full pack");
        assert_eq!(out.steps.len(), 2);
        assert_eq!(out.channel.width, w(12));
        // The fiber is now completely occupied and overlap-free.
        assert_eq!(s.mask(flexwan_topo::graph::EdgeId(0)).free_pixels(), 0);
        assert!(!wl[0].channel.overlaps(&wl[1].channel));
        assert!(!wl[0].channel.overlaps(&out.channel));
        assert!(!wl[1].channel.overlaps(&out.channel));
    }

    #[test]
    fn failed_search_rolls_back_partial_moves() {
        // 13 px exceeds the total free spectrum: every window fails — some
        // after moving a blocker — and the original layout must be
        // restored bit for bit.
        let (g, mut s, mut wl, route) = fragmented();
        let orig: Vec<PixelRange> = wl.iter().map(|x| x.channel).collect();
        let orig_occupied = s.total_occupied_ghz();
        assert!(make_room(&mut s, &mut wl, &route, w(13), 1, 4, &g).is_none());
        let after: Vec<PixelRange> = wl.iter().map(|x| x.channel).collect();
        assert_eq!(orig, after);
        assert_eq!(s.total_occupied_ghz(), orig_occupied);
    }
}
