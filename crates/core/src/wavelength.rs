//! A planned wavelength: the unit of provisioned capacity.

use flexwan_optical::format::TransponderFormat;
use flexwan_optical::spectrum::PixelRange;
use flexwan_topo::ip::IpLinkId;
use flexwan_topo::path::Path;

/// One wavelength provisioned by the planner (or restorer): a pair of
/// transponders at `format`, carried over `path`, occupying `channel` on
/// every fiber of the path (the spectrum-consistency invariant).
#[derive(Debug, Clone, PartialEq)]
pub struct Wavelength {
    /// The IP link whose capacity this wavelength carries.
    pub link: IpLinkId,
    /// Index of the candidate path used (the `k` of `P_{e,k}`).
    pub path_index: usize,
    /// The optical path traversed.
    pub path: Path,
    /// The transponder operating point.
    pub format: TransponderFormat,
    /// The spectrum occupied on every fiber of the path.
    pub channel: PixelRange,
}

impl Wavelength {
    /// Reach margin: optical reach − path length (the *gap* of Figure
    /// 14(a)); negative would violate the reach constraint and is rejected
    /// by construction elsewhere.
    pub fn reach_gap_km(&self) -> i64 {
        i64::from(self.format.reach_km) - i64::from(self.path.length_km)
    }

    /// Link spectral efficiency of the wavelength, bit/s/Hz (Figure 14(b)).
    pub fn spectral_efficiency(&self) -> f64 {
        self.format.spectral_efficiency()
    }
}

impl std::fmt::Display for Wavelength {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "link {} path#{} {}: {} @ {}",
            self.link.0, self.path_index, self.path, self.format, self.channel
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexwan_optical::spectrum::PixelWidth;
    use flexwan_topo::graph::Graph;

    #[test]
    fn gap_and_efficiency() {
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let e = g.add_edge(a, b, 500);
        let w = Wavelength {
            link: IpLinkId(0),
            path_index: 0,
            path: Path::new(&g, vec![a, b], vec![e]),
            format: TransponderFormat::derive(400, PixelWidth::from_ghz(75.0).unwrap(), 600),
            channel: PixelRange::new(0, PixelWidth::new(6)),
        };
        assert_eq!(w.reach_gap_km(), 100);
        assert!((w.spectral_efficiency() - 400.0 / 75.0).abs() < 1e-12);
    }
}
