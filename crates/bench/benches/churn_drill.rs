//! Churn drill: reaction-time quantiles and ladder behaviour of the
//! always-on churn service vs the per-tick deadline budget.
//!
//! Not a statistical microbenchmark — a drill. For each budget it
//! replays the same seeded mixed event stream (cuts, repairs, demand
//! deltas, drift) through a faulty transport and reports how fast the
//! service reacted and which ladder rungs the ticks landed on. An
//! unlimited budget should keep every tick on the warm rung; shrinking
//! budgets push ticks down to the heuristic and protection rungs
//! instead of stalling the loop.
//!
//! Run with `cargo bench --features bench --bench churn_drill`.

use flexwan_bench::churn::{churn_drill, ChurnDrillConfig};

fn main() {
    println!(
        "{:>12} {:>6} {:>7} {:>7} {:>9} {:>6} {:>6} {:>6} {:>10} {:>10}",
        "budget", "ticks", "events", "warm", "rebuilds", "L0", "L1", "L2", "p50_ms", "p99_ms"
    );
    for (label, budget_ns) in [
        ("unlimited", u64::MAX),
        ("250ms", 250_000_000),
        ("25ms", 25_000_000),
        ("2.5ms", 2_500_000),
    ] {
        let rep = churn_drill(&ChurnDrillConfig {
            events: 120,
            seed: 7,
            batch: 4,
            tick_budget_ns: budget_ns,
        });
        let c = &rep.counters;
        println!(
            "{:>12} {:>6} {:>7} {:>7} {:>9} {:>6} {:>6} {:>6} {:>10.2} {:>10.2}",
            label,
            c.ticks,
            c.events_applied,
            c.warm_mutations,
            c.rebuilds,
            c.level_ticks[0],
            c.level_ticks[1],
            c.level_ticks[2],
            rep.reaction_p50_ms,
            rep.reaction_p99_ms
        );
    }
}
