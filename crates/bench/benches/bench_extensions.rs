//! Microbenchmarks for the extension subsystems: vendor dialect codecs,
//! telemetry scanning, TE routing, defragmentation and 1+1 protection.

use criterion::{criterion_group, criterion_main, Criterion};
use flexwan_bench::instances::{default_config, tbackbone_instance};
use flexwan_core::planning::plan;
use flexwan_core::protect::plan_protected;
use flexwan_core::te::{network_from_plan, route_traffic, TrafficDemand};
use flexwan_core::Scheme;
use flexwan_ctrl::datastream::{FiberCutDetector, TelemetrySim, TelemetryStore};
use flexwan_ctrl::model::Vendor;
use flexwan_ctrl::{vendor, StandardConfig};
use flexwan_optical::spectrum::{PixelRange, PixelWidth};
use std::hint::black_box;

fn bench_extensions(c: &mut Criterion) {
    // Vendor dialect round trip.
    let cfg = StandardConfig::MuxPort {
        port: 7,
        passband: Some(PixelRange::new(40, PixelWidth::new(9))),
    };
    c.bench_function("vendor/encode_decode_roundtrip", |b| {
        b.iter(|| {
            for v in Vendor::ALL {
                let native = vendor::encode(v, black_box(&cfg));
                let _ = vendor::decode(v, &native).unwrap();
            }
        })
    });

    // Telemetry: one full tick + scan over the T-backbone fiber plant.
    let backbone = tbackbone_instance();
    let sim = TelemetrySim::new(&backbone.optical);
    c.bench_function("telemetry/tick_and_scan", |b| {
        b.iter_batched(
            || {
                let mut store = TelemetryStore::new(16);
                sim.tick(&mut store, 0, &[]);
                store
            },
            |mut store| {
                sim.tick(&mut store, 1, &[]);
                FiberCutDetector::default().scan(black_box(&store))
            },
            criterion::BatchSize::SmallInput,
        )
    });

    // TE: route the full traffic matrix over the planned IP capacities.
    let pcfg = default_config();
    let p = plan(Scheme::FlexWan, &backbone.optical, &backbone.ip, &pcfg);
    let net = network_from_plan(backbone.optical.num_nodes(), &backbone.ip, &p, None);
    let traffic: Vec<TrafficDemand> = backbone
        .ip
        .links()
        .iter()
        .map(|l| TrafficDemand {
            src: l.src,
            dst: l.dst,
            gbps: 0.6 * l.demand_gbps as f64,
        })
        .collect();
    c.bench_function("te/route_traffic_full_matrix", |b| {
        b.iter(|| route_traffic(black_box(&net), &traffic, 2))
    });

    // 1+1 protection planning on the full backbone.
    c.bench_function("protect/plan_protected_tbackbone", |b| {
        b.iter(|| plan_protected(Scheme::FlexWan, &backbone.optical, &backbone.ip, &pcfg))
    });
}

criterion_group!(benches, bench_extensions);
criterion_main!(benches);
