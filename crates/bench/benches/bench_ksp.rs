//! Microbenchmarks: shortest-path and K-shortest-routes on the two
//! evaluation topologies.

use criterion::{criterion_group, criterion_main, Criterion};
use flexwan_bench::instances::{cernet_instance, tbackbone_instance};
use flexwan_topo::ksp::{k_shortest_paths, shortest_path};
use flexwan_topo::route::k_shortest_routes;
use std::collections::HashSet;
use std::hint::black_box;

fn bench_ksp(c: &mut Criterion) {
    let tb = tbackbone_instance();
    let cer = cernet_instance();
    let none = HashSet::new();
    let tb_link = tb.ip.links()[0];
    let cer_link = cer.ip.links()[0];

    c.bench_function("dijkstra/tbackbone", |b| {
        b.iter(|| shortest_path(&tb.optical, black_box(tb_link.src), tb_link.dst, &none))
    });
    c.bench_function("dijkstra/cernet", |b| {
        b.iter(|| shortest_path(&cer.optical, black_box(cer_link.src), cer_link.dst, &none))
    });
    c.bench_function("yen_k5/tbackbone", |b| {
        b.iter(|| k_shortest_paths(&tb.optical, black_box(tb_link.src), tb_link.dst, 5, &none))
    });
    c.bench_function("routes_k5/tbackbone", |b| {
        b.iter(|| k_shortest_routes(&tb.optical, black_box(tb_link.src), tb_link.dst, 5, &none))
    });
}

criterion_group!(benches, bench_ksp);
criterion_main!(benches);
