//! Chaos drill: convergence time and retry counts vs injected fault rate.
//!
//! Not a statistical microbenchmark — a drill. For each fault rate it
//! pushes a full plan through a faulted device plane, runs the
//! self-healing loop to convergence, and reports how long the plane took
//! to become audited-clean and how much retry work that cost.
//!
//! Run with `cargo bench --features bench --bench chaos_drill`.

use std::sync::Arc;
use std::time::Instant;

use flexwan_core::planning::{plan, PlannerConfig};
use flexwan_core::Scheme;
use flexwan_ctrl::{Controller, DeviceFaults, FaultInjector, FaultPlan};
use flexwan_optical::spectrum::SpectrumGrid;
use flexwan_optical::WssKind;
use flexwan_topo::graph::Graph;
use flexwan_topo::ip::IpTopology;

fn backbone() -> (Graph, IpTopology) {
    let mut g = Graph::new();
    let a = g.add_node("a");
    let b = g.add_node("b");
    let c = g.add_node("c");
    let d = g.add_node("d");
    g.add_edge(a, b, 150);
    g.add_edge(b, c, 200);
    g.add_edge(c, d, 250);
    g.add_edge(a, c, 500);
    g.add_edge(b, d, 450);
    let mut ip = IpTopology::new();
    ip.add_link(a, c, 600);
    ip.add_link(a, b, 400);
    ip.add_link(b, d, 500);
    (g, ip)
}

fn main() {
    let (g, ip) = backbone();
    let cfg = PlannerConfig {
        grid: SpectrumGrid::new(96),
        ..Default::default()
    };
    let p = plan(Scheme::FlexWan, &g, &ip, &cfg);
    assert!(p.is_feasible());

    println!(
        "{:>10} {:>6} {:>9} {:>8} {:>9} {:>12} {:>8} {:>12}",
        "fault_rate",
        "seed",
        "passes",
        "retries",
        "repairs",
        "read_repairs",
        "trips",
        "converge_ms"
    );
    for &rate in &[0.0, 0.1, 0.2, 0.3, 0.4, 0.5] {
        for seed in 0..3u64 {
            let mut ctrl = Controller::build(&g, WssKind::PixelWise, cfg.grid);
            let faults = DeviceFaults {
                drop_prob: rate / 2.0,
                delay_reply_prob: rate / 2.0,
                ..Default::default()
            };
            let injector = Arc::new(FaultInjector::new(FaultPlan::uniform(seed, faults)));
            ctrl.arm_faults(injector);
            let t0 = Instant::now();
            let _ = ctrl.apply_plan(&p, &g);
            let report = ctrl.converge(&p, 64);
            let dt = t0.elapsed();
            assert!(
                report.converged,
                "rate {rate} seed {seed} failed to converge"
            );
            let s = ctrl.stats();
            println!(
                "{:>10.2} {:>6} {:>9} {:>8} {:>9} {:>12} {:>8} {:>12.2}",
                rate,
                seed,
                report.passes,
                s.retries,
                report.repaired,
                s.read_repairs,
                s.breaker_trips,
                dt.as_secs_f64() * 1e3
            );
        }
    }
}
