//! Macrobenchmarks: format-selection DP, spectrum first-fit, and the full
//! planning pipeline per scheme on the T-backbone.

use criterion::{criterion_group, criterion_main, Criterion};
use flexwan_bench::instances::{default_config, tbackbone_instance};
use flexwan_core::planning::format_dp::select_formats;
use flexwan_core::planning::{plan, SpectrumState};
use flexwan_core::Scheme;
use flexwan_optical::spectrum::{PixelWidth, SpectrumGrid};
use flexwan_optical::transponder::Svt;
use flexwan_topo::route::k_shortest_routes;
use std::hint::black_box;

fn bench_planning(c: &mut Criterion) {
    c.bench_function("format_dp/svt_2t_600km", |b| {
        b.iter(|| select_formats(&Svt, black_box(2000), 600, 1e-3))
    });

    let b = tbackbone_instance();
    let cfg = default_config();
    let route = k_shortest_routes(
        &b.optical,
        b.ip.links()[0].src,
        b.ip.links()[0].dst,
        1,
        &Default::default(),
    )
    .remove(0);
    c.bench_function("spectrum/allocate_route", |bch| {
        bch.iter_batched(
            || SpectrumState::new(SpectrumGrid::c_band(), b.optical.num_edges()),
            |mut s| s.allocate_route(black_box(&route), PixelWidth::new(8), 1),
            criterion::BatchSize::SmallInput,
        )
    });

    for scheme in Scheme::ALL {
        c.bench_function(&format!("plan/tbackbone/{scheme}"), |bch| {
            bch.iter(|| plan(black_box(scheme), &b.optical, &b.ip, &cfg))
        });
    }
}

criterion_group!(benches, bench_planning);
criterion_main!(benches);
