//! Macrobenchmarks: restoring one conduit-cut scenario against the
//! FlexWAN plan (1× and 5× demand).

use criterion::{criterion_group, criterion_main, Criterion};
use flexwan_bench::instances::{default_config, tbackbone_instance};
use flexwan_core::planning::plan;
use flexwan_core::restore::{conduit_cut_scenarios, restore};
use flexwan_core::Scheme;
use std::hint::black_box;

fn bench_restore(c: &mut Criterion) {
    let b = tbackbone_instance();
    let cfg = default_config();
    let scenarios = conduit_cut_scenarios(&b.optical);
    // The most disruptive scenario: the one hitting the most wavelengths.
    for scale in [1u64, 5] {
        let ip = b.ip.scaled(scale);
        let p = plan(Scheme::FlexWan, &b.optical, &ip, &cfg);
        let worst = scenarios
            .iter()
            .max_by_key(|s| {
                p.wavelengths
                    .iter()
                    .filter(|w| w.path.edges.iter().any(|e| s.cuts.contains(e)))
                    .count()
            })
            .expect("scenarios exist");
        c.bench_function(&format!("restore/worst_conduit_{scale}x"), |bch| {
            bch.iter(|| restore(black_box(&p), &b.optical, &ip, worst, &[], &cfg))
        });
    }
}

criterion_group!(benches, bench_restore);
criterion_main!(benches);
