//! Microbenchmarks: the LP simplex and the branch & bound MIP solver.

use criterion::{criterion_group, criterion_main, Criterion};
use flexwan_solver::{LinExpr, Model, Sense};
use std::hint::black_box;

/// A dense LP: max c·x st A·x ≤ b with n vars and 2n rows.
fn dense_lp(n: usize) -> Model {
    let mut m = Model::new();
    let vars: Vec<_> = (0..n).map(|i| m.nonneg(format!("x{i}"))).collect();
    for r in 0..2 * n {
        let expr = LinExpr::sum(
            vars.iter()
                .enumerate()
                .map(|(i, &v)| (((r * 7 + i * 3) % 5 + 1) as f64) * v),
        );
        m.le(expr, (10 + r % 7) as f64);
    }
    let obj = LinExpr::sum(
        vars.iter()
            .enumerate()
            .map(|(i, &v)| ((i % 4 + 1) as f64) * v),
    );
    m.set_objective(Sense::Maximize, obj);
    m
}

/// A 0/1 knapsack MIP with n items.
fn knapsack(n: usize) -> Model {
    let mut m = Model::new();
    let items: Vec<_> = (0..n).map(|i| m.binary(format!("b{i}"))).collect();
    let w = LinExpr::sum(
        items
            .iter()
            .enumerate()
            .map(|(i, &v)| ((i * 13 % 17 + 3) as f64) * v),
    );
    m.le(w, (4 * n) as f64);
    let value = LinExpr::sum(
        items
            .iter()
            .enumerate()
            .map(|(i, &v)| ((i * 7 % 11 + 1) as f64) * v),
    );
    m.set_objective(Sense::Maximize, value);
    m
}

fn bench_solver(c: &mut Criterion) {
    for n in [10usize, 25] {
        let m = dense_lp(n);
        c.bench_function(&format!("simplex/lp_{n}v"), |b| {
            b.iter(|| black_box(&m).solve())
        });
    }
    for n in [12usize, 18] {
        let m = knapsack(n);
        c.bench_function(&format!("branch_bound/knapsack_{n}"), |b| {
            b.iter(|| black_box(&m).solve())
        });
    }
}

criterion_group!(benches, bench_solver);
criterion_main!(benches);
