//! PR 4 acceptance: the deterministic pool and the route cache change
//! wall-clock time, never bytes. The sweep outputs (`SchemeCost` and
//! `Restoration` vectors) must be identical at 1, 2 and 4 threads, and a
//! cached cut-fiber query must never be served an uncut route.

use std::collections::HashSet;

use flexwan_bench::experiments::{
    cost_vs_scale, cost_vs_scale_threads, restoration_report, restoration_report_threads,
    restoration_results,
};
use flexwan_bench::instances::{default_config, tbackbone_instance};
use flexwan_core::restore::conduit_cut_scenarios;
use flexwan_core::Scheme;
use flexwan_topo::cache::RouteCache;

#[test]
fn cost_vs_scale_is_bit_identical_across_thread_counts() {
    let b = tbackbone_instance();
    let cfg = default_config();
    let serial = cost_vs_scale(&b, &cfg, 4);
    for threads in [1, 2, 4] {
        let par = cost_vs_scale_threads(&b, &cfg, 4, threads);
        assert_eq!(
            serial, par,
            "SchemeCost ladder diverged at {threads} threads"
        );
    }
}

#[test]
fn restoration_sweep_is_bit_identical_across_thread_counts() {
    let b = tbackbone_instance();
    let cfg = default_config();
    let serial = restoration_results(&b, &cfg, Scheme::FlexWan, 2, false, &RouteCache::new(), 1);
    assert!(
        !serial.is_empty(),
        "conduit-cut scenario set must not be empty"
    );
    for threads in [1, 2, 4] {
        let par = restoration_results(
            &b,
            &cfg,
            Scheme::FlexWan,
            2,
            false,
            &RouteCache::new(),
            threads,
        );
        assert_eq!(
            serial, par,
            "Restoration vector diverged at {threads} threads"
        );
    }
    // The aggregated report built from a shared warm cache agrees too.
    let cache = RouteCache::new();
    let warm = restoration_report_threads(&b, &cfg, Scheme::FlexWan, 2, false, &cache, 2);
    let rewarmed = restoration_report_threads(&b, &cfg, Scheme::FlexWan, 2, false, &cache, 4);
    assert_eq!(
        restoration_report(&b, &cfg, Scheme::FlexWan, 2, false),
        warm
    );
    assert_eq!(warm, rewarmed, "a warm cache must not change the report");
}

#[test]
fn cached_cut_queries_never_see_uncut_routes() {
    let b = tbackbone_instance();
    let cfg = default_config();
    let cache = RouteCache::new();
    let none = HashSet::new();
    let scenarios = conduit_cut_scenarios(&b.optical);
    for link in b.ip.links().iter().take(6) {
        // Warm the cache with the uncut routes first — the poisoning
        // hazard is a later cut query being served this entry.
        let uncut = cache.routes(&b.optical, link.src, link.dst, cfg.k_paths, &none);
        for scenario in scenarios.iter().take(8) {
            let banned = scenario.banned();
            let cut = cache.routes(&b.optical, link.src, link.dst, cfg.k_paths, &banned);
            for route in cut.iter() {
                for hop in &route.hops {
                    assert!(
                        hop.iter().all(|e| !banned.contains(e)),
                        "cut query for {:?}->{:?} returned a route using a cut fiber",
                        link.src,
                        link.dst
                    );
                }
            }
            let uses_cut_fiber = uncut.iter().any(|r| {
                r.hops
                    .iter()
                    .any(|hop| hop.iter().any(|e| banned.contains(e)))
            });
            if uses_cut_fiber {
                assert_ne!(
                    *uncut, *cut,
                    "distinct banned sets must be distinct cache entries"
                );
            }
        }
    }
    // Repeating an earlier query hits the cache and shares the entry.
    let misses_before = cache.misses();
    let link = &b.ip.links()[0];
    let again = cache.routes(&b.optical, link.src, link.dst, cfg.k_paths, &none);
    assert_eq!(
        cache.misses(),
        misses_before,
        "repeat query must not recompute"
    );
    assert!(cache.hits() > 0, "repeated queries should hit the cache");
    assert!(!again.is_empty());
}
