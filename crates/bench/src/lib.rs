//! Experiment harness: one function per paper table/figure, shared by the
//! regeneration binaries (`src/bin/fig*.rs`), the criterion benches, and
//! the workspace integration tests that assert the paper's claims hold in
//! shape.
//!
//! Every experiment is deterministic: fixed topology seeds, fixed planner
//! configuration, no wall-clock or RNG ambient state.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod availability;
pub mod churn;
pub mod experiments;
pub mod instances;
pub mod table;

pub use instances::{cernet_instance, tbackbone_instance};
