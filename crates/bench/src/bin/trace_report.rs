//! End-to-end observability report: one instrumented run of the system's
//! three hot paths — planning, restoration, and a controller chaos drill —
//! printing the recorded span tree plus metrics snapshots in JSON and
//! Prometheus text format.
//!
//! Flags (combinable; default prints all three sections):
//!
//! * `--tree` — only the span tree;
//! * `--json` — only the metrics JSON snapshot;
//! * `--prom` — only the Prometheus exposition text;
//! * `--clock=manual` — drive the report from a [`ManualClock`] instead of
//!   the wall clock: every timestamp is 0 ns and the whole report becomes
//!   byte-deterministic (CI diffs two runs to prove it).

use std::sync::Arc;

use flexwan_bench::table;
use flexwan_core::observe::{plan_observed, restore_observed};
use flexwan_core::planning::{solve_exact, PlannerConfig};
use flexwan_core::restore::one_fiber_scenarios;
use flexwan_core::Scheme;
use flexwan_ctrl::recovery::recover_misconnection_observed;
use flexwan_ctrl::{
    Controller, DeviceFaults, FaultInjector, FaultPlan, Orchestrator, TelemetrySim, TelemetryStore,
};
use flexwan_obs::{ManualClock, Obs};
use flexwan_optical::format::FecOverhead;
use flexwan_optical::spectrum::{PixelRange, PixelWidth, SpectrumGrid};
use flexwan_optical::WssKind;
use flexwan_physim::BerEvaluator;
use flexwan_solver::{record_solver_stats, SolveOptions};
use flexwan_topo::graph::Graph;
use flexwan_topo::ip::IpTopology;

fn backbone() -> (Graph, IpTopology) {
    let mut g = Graph::new();
    let a = g.add_node("a");
    let b = g.add_node("b");
    let c = g.add_node("c");
    let d = g.add_node("d");
    g.add_edge(a, b, 150);
    g.add_edge(b, c, 200);
    g.add_edge(c, d, 250);
    g.add_edge(a, c, 500);
    g.add_edge(b, d, 450);
    let mut ip = IpTopology::new();
    ip.add_link(a, c, 600);
    ip.add_link(a, b, 400);
    ip.add_link(b, d, 500);
    (g, ip)
}

/// A 4-node ring, small enough that the exact MIP stays sub-second in
/// debug builds (the same instance the `solver_stats` binary reports on).
fn ring_instance() -> (Graph, IpTopology) {
    let mut g = Graph::new();
    let n: Vec<_> = ["a", "b", "c", "d"]
        .iter()
        .map(|s| g.add_node(*s))
        .collect();
    for i in 0..4 {
        g.add_edge(n[i], n[(i + 1) % 4], 300 + 60 * i as u32);
    }
    let mut ip = IpTopology::new();
    ip.add_link(n[0], n[2], 800);
    ip.add_link(n[1], n[3], 600);
    (g, ip)
}

fn run_scenario(obs: &Obs, manual: bool) {
    let (g, ip) = backbone();
    let cfg = PlannerConfig {
        grid: SpectrumGrid::new(96),
        ..Default::default()
    };

    // 1. Planning: observed runs for two schemes under one root span.
    let planning = obs.span("report.planning");
    let p = plan_observed(obs, Some(&planning), Scheme::FlexWan, &g, &ip, &cfg);
    let _ = plan_observed(obs, Some(&planning), Scheme::Radwan, &g, &ip, &cfg);
    planning.end();
    assert!(p.is_feasible(), "report backbone must plan cleanly");

    // 2. Restoration: every single-fiber scenario against the plan.
    let restoration = obs.span("report.restoration");
    for scenario in &one_fiber_scenarios(&g) {
        let _ = restore_observed(obs, Some(&restoration), &p, &g, &ip, scenario, &[], &cfg);
    }
    restoration.end();

    // 3. Chaos drill: a faulted device plane, the self-healing loop, then
    // the telemetry-driven restoration loop reacting to a fiber cut.
    let drill = obs.span("report.chaos_drill");
    let mut ctrl = Controller::build(&g, WssKind::PixelWise, cfg.grid);
    ctrl.set_obs(obs.clone());
    let faults = DeviceFaults {
        drop_prob: 0.1,
        delay_reply_prob: 0.1,
        ..Default::default()
    };
    ctrl.arm_faults(Arc::new(FaultInjector::new(FaultPlan::uniform(7, faults))));
    let apply = ctrl.apply_plan(&p, &g);
    drill.field("apply_rejections", apply.rejections.len());
    let report = ctrl.converge(&p, 64);
    assert!(report.converged, "drill plane must converge");
    drill.field("converge_passes", report.passes);

    let primary = p.wavelengths[0].path.edges[0];
    let mut store = TelemetryStore::new(30);
    store.set_obs(obs.clone());
    let mut orch = Orchestrator::new(&g, &ip, p, cfg, Vec::new());
    orch.set_obs(obs.clone());
    let sim = TelemetrySim::new(&g);
    for t in 0..3 {
        sim.tick(&mut store, t, &[]);
        orch.tick(&store, &mut ctrl);
    }
    sim.tick(&mut store, 3, &[primary]);
    orch.tick(&store, &mut ctrl);
    drill.field("live_restoration", orch.live_restoration().len());
    drill.end();

    // 4. Solver + physical layer: exact-MIP counters and BER timings.
    let (rg, rip) = ring_instance();
    let exact = solve_exact(
        Scheme::FlexWan,
        &rg,
        &rip,
        &PlannerConfig {
            grid: SpectrumGrid::new(16),
            k_paths: 2,
            ..Default::default()
        },
        &SolveOptions {
            max_nodes: 50_000,
            ..Default::default()
        },
    )
    .expect("report MIP instance is feasible");
    let mut stats = exact.stats;
    if manual {
        // The solver's phase timings are wall-clock (`SolverStats` docs);
        // zero them so a manual-clock report stays byte-deterministic.
        stats.time_phase1 = std::time::Duration::ZERO;
        stats.time_phase2 = std::time::Duration::ZERO;
        stats.time_dual = std::time::Duration::ZERO;
        stats.time_total = std::time::Duration::ZERO;
    }
    record_solver_stats(obs.registry(), &stats);

    let ber = BerEvaluator::new(obs.clone());
    for snr_db in [8.0, 12.0, 16.0, 20.0] {
        let _ = ber.evaluate(4.0, 10f64.powf(snr_db / 10.0), FecOverhead::LOW);
    }
    let _ = recover_misconnection_observed(
        obs,
        WssKind::PixelWise,
        9,
        PixelRange::new(12, PixelWidth::new(6)),
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let manual = args.iter().any(|a| a == "--clock=manual");
    let sections: Vec<&str> = args
        .iter()
        .filter(|a| matches!(a.as_str(), "--tree" | "--json" | "--prom"))
        .map(|a| &a[2..])
        .collect();
    let all = sections.is_empty();

    let obs = if manual {
        Obs::with_clock(Arc::new(ManualClock::new()))
    } else {
        Obs::new()
    };
    run_scenario(&obs, manual);

    if all {
        table::banner(
            "Observability report",
            "Span tree and metrics snapshots from one instrumented planning + restoration + chaos-drill run.",
        );
    }
    if all || sections.contains(&"tree") {
        if all {
            println!("── span tree ──");
        }
        print!("{}", obs.span_tree());
    }
    if all || sections.contains(&"json") {
        if all {
            println!("\n── metrics (JSON) ──");
        }
        println!("{}", obs.metrics_json());
    }
    if all || sections.contains(&"prom") {
        if all {
            println!("\n── metrics (Prometheus) ──");
        }
        print!("{}", obs.metrics_prometheus());
    }
}
