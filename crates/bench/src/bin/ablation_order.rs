//! Ablation (DESIGN.md §5.3): the order links are assigned spectrum.
//! Most-constrained-first protects long links whose formats are scarce.

use flexwan_bench::instances::{default_config, tbackbone_instance};
use flexwan_bench::table;
use flexwan_core::planning::{plan, LinkOrder, PlannerConfig};
use flexwan_core::Scheme;

fn main() {
    table::banner(
        "Ablation: link order",
        "FlexWAN at 5x demand under different spectrum-assignment orders.",
    );
    let b = tbackbone_instance();
    let ip5 = b.ip.scaled(5);
    let orders: Vec<(&str, LinkOrder)> = vec![
        ("most-constrained-first", LinkOrder::MostConstrainedFirst),
        ("shortest-first", LinkOrder::ShortestFirst),
        ("input order", LinkOrder::InputOrder),
        ("random (seed 1)", LinkOrder::Random(1)),
        ("random (seed 2)", LinkOrder::Random(2)),
    ];
    let rows: Vec<Vec<String>> = orders
        .into_iter()
        .map(|(name, order)| {
            let cfg = PlannerConfig {
                order,
                ..default_config()
            };
            let p = plan(Scheme::FlexWan, &b.optical, &ip5, &cfg);
            vec![
                name.to_string(),
                p.transponder_count().to_string(),
                p.unmet_gbps().to_string(),
                format!("{:.2}", p.spectrum.peak_utilization()),
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(&["order", "transponders", "unmet Gbps", "peak util"], &rows)
    );
}
