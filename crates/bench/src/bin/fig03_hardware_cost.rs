//! Figure 3: hardware cost of provisioning 800 Gbps WAN capacity at
//! different optical path lengths — (a) minimum transponder pairs and
//! (b) spectrum usage, SVT vs BVT.

use flexwan_bench::experiments::provision_800g;
use flexwan_bench::table;

fn main() {
    table::banner(
        "Figure 3",
        "Provisioning 800 Gbps: transponder pairs (a) and spectrum GHz (b).",
    );
    let lengths: Vec<u32> = vec![100, 200, 300, 600, 900, 1100, 1500, 1800, 2000];
    let rows: Vec<Vec<String>> = provision_800g(&lengths)
        .into_iter()
        .map(|r| {
            let fmt = |v: Option<(usize, f64)>| match v {
                Some((n, ghz)) => (n.to_string(), format!("{ghz:.1}")),
                None => ("-".into(), "-".into()),
            };
            let (svt_n, svt_g) = fmt(r.svt);
            let (bvt_n, bvt_g) = fmt(r.bvt);
            vec![r.length_km.to_string(), svt_n, bvt_n, svt_g, bvt_g]
        })
        .collect();
    println!(
        "{}",
        table::render(
            &["path (km)", "SVT pairs", "BVT pairs", "SVT GHz", "BVT GHz"],
            &rows
        )
    );
    println!("paper anchors: <300 km → 1 SVT pair vs 3 BVT pairs (225 GHz vs ≤150 GHz);");
    println!("               1800 km → SVT uses half the BVT transponders.");
}
