//! Figure 14: (a) CDF of the gap = optical reach − fiber path length per
//! wavelength and (b) CDF of link spectral efficiency, per scheme.

use flexwan_bench::experiments::gap_and_sse;
use flexwan_bench::instances::{default_config, tbackbone_instance};
use flexwan_bench::table;
use flexwan_core::planning::{cdf, mean};
use flexwan_core::Scheme;

fn main() {
    table::banner(
        "Figure 14",
        "(a) reach-gap CDF quantiles (km); (b) spectral-efficiency stats (b/s/Hz).",
    );
    let b = tbackbone_instance();
    let cfg = default_config();
    let quantile = |vals: &[i64], q: f64| -> i64 {
        let c = cdf(vals);
        let idx = ((c.len() as f64 * q).ceil() as usize).clamp(1, c.len()) - 1;
        c[idx].0
    };
    let mut rows = Vec::new();
    for scheme in Scheme::ALL {
        let (gaps, sse) = gap_and_sse(&b, &cfg, scheme);
        let below100 = gaps.iter().filter(|&&g| g < 100).count() as f64 / gaps.len() as f64;
        let above1000 = gaps.iter().filter(|&&g| g > 1000).count() as f64 / gaps.len() as f64;
        rows.push(vec![
            scheme.to_string(),
            quantile(&gaps, 0.5).to_string(),
            quantile(&gaps, 0.9).to_string(),
            format!("{:.2}", below100),
            format!("{:.2}", above1000),
            format!("{:.2}", mean(&sse)),
        ]);
    }
    println!(
        "{}",
        table::render(
            &[
                "scheme",
                "gap p50",
                "gap p90",
                "frac<100km",
                "frac>1000km",
                "mean SE"
            ],
            &rows
        )
    );
    println!("paper: FlexWAN ≈90% of gaps < 100 km; 100G-WAN ≈80% of gaps > 1000 km;");
    println!("       100G-WAN SE fixed at 2 b/s/Hz; FlexWAN the most spectrally efficient.");
}
