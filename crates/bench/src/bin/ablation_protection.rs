//! Ablation (extension): restoration (§8) vs 1+1 dedicated protection.
//! Protection recovers instantly and deterministically but doubles the
//! hardware; restoration shares spare spectrum across failures and costs
//! nothing up front, at the price of recomputation and spectrum hunting.

use flexwan_bench::instances::{default_config, tbackbone_instance};
use flexwan_bench::table;
use flexwan_core::planning::plan_cached;
use flexwan_core::protect::plan_protected_cached;
use flexwan_core::restore::{conduit_cut_scenarios, restore_cached, restore_report};
use flexwan_core::Scheme;
use flexwan_topo::cache::RouteCache;
use flexwan_util::pool;

fn main() {
    table::banner(
        "Ablation: restoration vs 1+1 protection",
        "FlexWAN at 1x demand: hardware cost and capability under conduit cuts.",
    );
    let b = tbackbone_instance();
    let cfg = default_config();
    let scenarios = conduit_cut_scenarios(&b.optical);
    let cache = RouteCache::new();
    let threads = pool::default_threads();

    // Restoration-based resilience (the paper's approach).
    let p = plan_cached(Scheme::FlexWan, &b.optical, &b.ip, &cfg, &cache);
    let restored = pool::par_map(&scenarios, threads, |s| {
        restore_cached(&p, &b.optical, &b.ip, s, &[], &cfg, &cache)
    });
    let results: Vec<_> = scenarios
        .iter()
        .map(|s| s.probability)
        .zip(restored)
        .collect();
    let rest_cap = restore_report(&results).mean_capability();

    // 1+1 protection (disjoint-pair search uses k ≥ 4, a distinct cache
    // key from the planner's k — safe to share one cache).
    let pp = plan_protected_cached(Scheme::FlexWan, &b.optical, &b.ip, &cfg, &cache);
    let prot_cap: f64 = scenarios
        .iter()
        .map(|s| s.probability * pp.capability_under(&b.ip, s))
        .sum::<f64>()
        / scenarios.iter().map(|s| s.probability).sum::<f64>();

    let rows = vec![
        vec![
            "restoration (paper)".to_string(),
            p.transponder_count().to_string(),
            format!("{:.0}", p.spectrum_usage_ghz()),
            format!("{:.3}", rest_cap),
            "recompute + retune (seconds)".to_string(),
        ],
        vec![
            "1+1 protection".to_string(),
            pp.transponder_count().to_string(),
            format!("{:.0}", pp.spectrum_usage_ghz()),
            format!("{:.3}", prot_cap),
            "instant switch (ms)".to_string(),
        ],
    ];
    println!(
        "{}",
        table::render(
            &[
                "resilience",
                "transponders",
                "spectrum GHz",
                "mean capability",
                "recovery"
            ],
            &rows
        )
    );
    println!(
        "unprotectable links under 1+1 (no conduit-disjoint route pair): {}",
        pp.unprotectable.len()
    );
    println!("restoration matches protection's capability at a fraction of the");
    println!("hardware — the economics behind §8's restoration-first design.");
}
