//! Extension experiment: cross-layer audit. Every planned wavelength is
//! re-evaluated on the simulated physical layer (flexwan-physim); the
//! SNR margin distribution shows how the capability-table planner and the
//! physics agree — the audit operators run before lighting channels.

use flexwan::validate::validate_plan;
use flexwan_bench::instances::{default_config, tbackbone_instance};
use flexwan_bench::table;
use flexwan_core::planning::plan;
use flexwan_core::Scheme;
use flexwan_physim::testbed::Testbed;

fn main() {
    table::banner(
        "Cross-layer SNR margins (extension)",
        "Planned wavelengths re-checked against the simulated physical layer.",
    );
    let b = tbackbone_instance();
    let cfg = default_config();
    let testbed = Testbed::default();
    let mut rows = Vec::new();
    for scheme in Scheme::ALL {
        let p = plan(scheme, &b.optical, &b.ip, &cfg);
        let rep = validate_plan(&p, &testbed);
        rows.push(vec![
            scheme.to_string(),
            rep.margins.len().to_string(),
            format!("{:.0}%", 100.0 * rep.healthy_fraction()),
            format!("{:+.1}", rep.mean_margin_db()),
            format!("{:+.1}", rep.worst_margin_db()),
        ]);
    }
    println!(
        "{}",
        table::render(
            &[
                "scheme",
                "wavelengths",
                "margin ≥ 0",
                "mean margin dB",
                "worst dB"
            ],
            &rows
        )
    );
    println!("negative margins mark (rate, spacing) cells where the linear-ASE model");
    println!("is more pessimistic than the paper's measured Table 2 (see EXPERIMENTS.md).");
}
