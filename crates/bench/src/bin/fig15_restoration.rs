//! Figure 15: (a) distribution of restored-vs-original path lengths and
//! (b) mean restoration capability vs capacity scale, per scheme.

use flexwan_bench::experiments::{restoration_report_threads, restoration_vs_scale_threads};
use flexwan_bench::instances::{default_config, tbackbone_instance};
use flexwan_bench::table;
use flexwan_core::Scheme;
use flexwan_topo::cache::RouteCache;
use flexwan_util::pool;

fn main() {
    table::banner(
        "Figure 15",
        "(a) restored path stretch; (b) mean restoration capability vs scale.",
    );
    let b = tbackbone_instance();
    let cfg = default_config();
    let threads = pool::default_threads();

    let rep = restoration_report_threads(
        &b,
        &cfg,
        Scheme::FlexWan,
        1,
        false,
        &RouteCache::new(),
        threads,
    );
    println!(
        "(a) restored paths longer than original: {:.0}%  (paper: ≈90%)",
        100.0 * rep.fraction_longer()
    );
    println!(
        "    max restored/original length ratio: {:.1}x  (paper: >10x extremes)",
        rep.max_length_ratio()
    );
    println!();

    let rows: Vec<Vec<String>> = restoration_vs_scale_threads(&b, &cfg, &[1, 2, 3, 4, 5], threads)
        .into_iter()
        .map(|(s, caps)| {
            vec![
                format!("{s}x"),
                format!("{:.3}", caps[0]),
                format!("{:.3}", caps[1]),
                format!("{:.3}", caps[2]),
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(&["scale", "100G-WAN", "RADWAN", "FlexWAN"], &rows)
    );
    println!("paper: all schemes ≈1.0 when underloaded; in the overloaded network");
    println!("       (5x) FlexWAN revives ≈15% more capacity than RADWAN.");
}
