//! Ablation (DESIGN.md §5.4): WSS placement granularity. FlexWAN's value
//! rests on the 12.5 GHz pixel; coarser placement approaches a fixed grid.

use flexwan_bench::instances::{default_config, tbackbone_instance};
use flexwan_bench::table;
use flexwan_core::planning::{max_feasible_scale, plan, PlannerConfig};
use flexwan_core::Scheme;

fn main() {
    table::banner(
        "Ablation: placement granularity",
        "FlexWAN with coarser channel-start alignment (pixels of 12.5 GHz).",
    );
    let b = tbackbone_instance();
    let rows: Vec<Vec<String>> = [1u32, 2, 4, 6]
        .iter()
        .map(|&align| {
            let cfg = PlannerConfig {
                min_alignment: align,
                ..default_config()
            };
            let p = plan(Scheme::FlexWan, &b.optical, &b.ip, &cfg);
            let maxs = max_feasible_scale(Scheme::FlexWan, &b.optical, &b.ip, &cfg, 12);
            vec![
                format!("{} GHz", f64::from(align) * 12.5),
                p.transponder_count().to_string(),
                p.unmet_gbps().to_string(),
                format!("{maxs}x"),
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(
            &["alignment", "transponders", "unmet Gbps", "max scale"],
            &rows
        )
    );
    println!("expected: coarser alignment fragments the spectrum and lowers the");
    println!("supportable scale — the value of the pixel-wise WSS.");
}
