//! Figure 2(b): maximum data rate supported by the BVT (RADWAN) and the
//! SVT (FlexWAN) as a function of transmission distance.

use flexwan_bench::experiments::max_rate_curves;
use flexwan_bench::table;

fn main() {
    table::banner(
        "Figure 2(b)",
        "Max data rate (Gbps) vs required distance; '-' = unreachable.",
    );
    let distances: Vec<u32> = (1..=25).map(|i| i * 200).collect();
    let rows: Vec<Vec<String>> = max_rate_curves(&distances)
        .into_iter()
        .map(|(d, svt, bvt, fixed)| {
            vec![
                d.to_string(),
                table::opt(svt),
                table::opt(bvt),
                table::opt(fixed),
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(
            &[
                "distance (km)",
                "SVT (FlexWAN)",
                "BVT (RADWAN)",
                "100G fixed"
            ],
            &rows
        )
    );
}
