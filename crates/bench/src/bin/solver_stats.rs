//! Solver instrumentation report: runs the exact planning and restoration
//! MIPs on representative small instances and prints the [`SolverStats`]
//! counter block — pivots per phase, refactorizations, branch & bound
//! nodes, warm-start hit rate, and per-phase wall time. This is the
//! observability the paper gets from Gurobi's log; here it doubles as a
//! regression canary for the warm-started sparse simplex (a hit-rate
//! collapse or pivot explosion shows up immediately).
//!
//! [`SolverStats`]: flexwan_solver::SolverStats

use flexwan_bench::table;
use flexwan_core::planning::{solve_exact, PlannerConfig};
use flexwan_core::restore::solve_restoration_exact;
use flexwan_core::{plan, FailureScenario, Scheme};
use flexwan_optical::spectrum::SpectrumGrid;
use flexwan_solver::SolveOptions;
use flexwan_topo::graph::{EdgeId, Graph};
use flexwan_topo::ip::IpTopology;

/// A 4-node ring — big enough that branch & bound actually branches and
/// warm starts fire, small enough that the exact MIP stays sub-second
/// even in debug builds.
fn ring_instance() -> (Graph, IpTopology) {
    let mut g = Graph::new();
    let n: Vec<_> = ["a", "b", "c", "d"]
        .iter()
        .map(|s| g.add_node(*s))
        .collect();
    for i in 0..4 {
        g.add_edge(n[i], n[(i + 1) % 4], 300 + 60 * i as u32);
    }
    let mut ip = IpTopology::new();
    ip.add_link(n[0], n[2], 800);
    ip.add_link(n[1], n[3], 600);
    (g, ip)
}

fn cfg() -> PlannerConfig {
    PlannerConfig {
        grid: SpectrumGrid::new(16),
        k_paths: 2,
        ..PlannerConfig::default()
    }
}

fn main() {
    table::banner(
        "Solver statistics",
        "Warm-started sparse simplex counters on the exact planning and restoration MIPs.",
    );
    let (g, ip) = ring_instance();
    let c = cfg();
    let opts = SolveOptions {
        max_nodes: 50_000,
        ..SolveOptions::default()
    };

    let exact = solve_exact(Scheme::FlexWan, &g, &ip, &c, &opts)
        .expect("ring planning instance is feasible");
    println!(
        "planning MIP   objective {:.4}  ({} wavelengths)",
        exact.objective,
        exact.wavelengths.len()
    );
    println!("{}", exact.stats);

    // Restoration: cut the first ring fiber out from under the heuristic
    // plan and re-route the affected wavelengths exactly.
    let p = plan(Scheme::FlexWan, &g, &ip, &c);
    let cut = FailureScenario {
        id: 0,
        cuts: vec![EdgeId(0)],
        probability: 1.0,
    };
    let restored = solve_restoration_exact(&p, &g, &ip, &cut, &[], &c, &opts)
        .expect("restoration instance is solvable");
    println!();
    println!(
        "restoration MIP  restored {} of {} Gbps affected",
        restored.restored_gbps, restored.affected_gbps
    );
    println!("{}", restored.stats);
}
