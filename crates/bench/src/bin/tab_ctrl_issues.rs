//! §4.3 / Figure 5: spectrum issues under per-vendor (uncoordinated)
//! control vs FlexWAN's centralized controller, plus the §9 zero-touch
//! misconnection recovery and OLS-evolution comparisons.

use flexwan_bench::experiments::controller_issue_counts;
use flexwan_bench::instances::{default_config, tbackbone_instance};
use flexwan_bench::table;
use flexwan_ctrl::recovery::{evolution_replacements, recover_misconnection, RecoveryOutcome};
use flexwan_optical::spectrum::{PixelRange, PixelWidth};
use flexwan_optical::WssKind;

fn main() {
    table::banner(
        "Controller issues (§4.3, Figure 5)",
        "Channel conflicts & inconsistencies: per-vendor controllers vs centralized.",
    );
    let counts = controller_issue_counts(&tbackbone_instance(), &default_config());
    let rows = vec![
        vec![
            "uncoordinated (per-vendor)".to_string(),
            counts.uncoordinated.0.to_string(),
            counts.uncoordinated.1.to_string(),
        ],
        vec![
            "centralized (FlexWAN)".to_string(),
            counts.centralized.0.to_string(),
            counts.centralized.1.to_string(),
        ],
    ];
    println!(
        "{}",
        table::render(&["control plane", "conflicts", "inconsistencies"], &rows)
    );
    println!(
        "wavelengths compared: {}  (paper: *zero* issues under centralized control)",
        counts.wavelengths
    );
    println!();

    // §9 zero-touch misconnection recovery.
    let channel = PixelRange::new(9, PixelWidth::new(6));
    let fixed = recover_misconnection(
        WssKind::FixedGrid {
            spacing: PixelWidth::new(6),
        },
        4,
        channel,
    );
    let sliced = recover_misconnection(WssKind::PixelWise, 4, channel);
    println!("misconnection drill (transponder wired to the wrong MUX port):");
    println!(
        "  legacy fixed-grid OLS : {}",
        match fixed {
            RecoveryOutcome::ZeroTouch { .. } => "zero-touch".to_string(),
            RecoveryOutcome::ManualIntervention { .. } => "manual on-site intervention".to_string(),
        }
    );
    println!(
        "  spectrum-sliced OLS   : {}",
        match sliced {
            RecoveryOutcome::ZeroTouch { reconfigured_port } =>
                format!("zero-touch (port {reconfigured_port} retuned)"),
            RecoveryOutcome::ManualIntervention { .. } => "manual".to_string(),
        }
    );
    println!();

    // §9 smooth evolution: 50 GHz fleet → 75 GHz wavelengths.
    let n = 120;
    println!("evolving {n} OLS devices to 75 GHz-class wavelengths:");
    println!(
        "  fixed 50 GHz grid OLS : {} replacements",
        evolution_replacements(
            WssKind::FixedGrid {
                spacing: PixelWidth::new(4)
            },
            PixelWidth::new(6),
            n
        )
    );
    println!(
        "  spectrum-sliced OLS   : {} replacements",
        evolution_replacements(WssKind::PixelWise, PixelWidth::new(6), n)
    );
}
