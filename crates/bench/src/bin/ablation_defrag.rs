//! Ablation (extension): hitless spectrum defragmentation. When a new
//! wavelength finds no contiguous spectrum, the controller may retune up
//! to N existing wavelengths (make-before-break) to make room — possible
//! only because FlexWAN's passbands and spacings are software-defined.

use flexwan_bench::instances::{default_config, tbackbone_instance};
use flexwan_bench::table;
use flexwan_core::planning::{max_feasible_scale, plan, PlannerConfig};
use flexwan_core::Scheme;

fn main() {
    table::banner(
        "Ablation: spectrum defragmentation",
        "FlexWAN max supported scale as the per-wavelength retune budget grows.",
    );
    let b = tbackbone_instance();
    // Fragmentation arises under adversarial *arrival order* (incremental
    // operation), not under batch most-constrained-first planning — so the
    // ablation runs the planner in shortest-first order, the order that
    // strands long links behind fragmented spectrum.
    let rows: Vec<Vec<String>> = [0usize, 1, 2, 4]
        .iter()
        .map(|&moves| {
            let cfg = PlannerConfig {
                defrag_moves: moves,
                order: flexwan_core::planning::LinkOrder::ShortestFirst,
                ..default_config()
            };
            let p5 = plan(Scheme::FlexWan, &b.optical, &b.ip.scaled(5), &cfg);
            let p6 = plan(Scheme::FlexWan, &b.optical, &b.ip.scaled(6), &cfg);
            let maxs = max_feasible_scale(Scheme::FlexWan, &b.optical, &b.ip, &cfg, 12);
            vec![
                moves.to_string(),
                p5.unmet_gbps().to_string(),
                p6.unmet_gbps().to_string(),
                format!("{maxs}x"),
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(
            &[
                "retune budget",
                "unmet @5x (Gbps)",
                "unmet @6x (Gbps)",
                "max scale"
            ],
            &rows
        )
    );
    println!("defragmentation converts stranded free pixels into usable capacity;");
    println!("the fixed-grid baselines cannot defragment at all (rigid passbands).");
}
