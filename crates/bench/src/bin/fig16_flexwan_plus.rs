//! Figure 16: restoration capability distribution in the underloaded (1×)
//! and overloaded (5×) backbone, including FlexWAN+ (half the saved
//! transponders kept as spares).

use flexwan_bench::experiments::restoration_report;
use flexwan_bench::instances::{default_config, tbackbone_instance};
use flexwan_bench::table;
use flexwan_core::planning::cdf;
use flexwan_core::Scheme;

fn main() {
    table::banner(
        "Figure 16",
        "Restoration-capability CDF quantiles per scheme, underloaded & overloaded.",
    );
    let b = tbackbone_instance();
    let cfg = default_config();
    for scale in [1u64, 5] {
        println!("--- scale {scale}x ---");
        let mut rows = Vec::new();
        for (name, scheme, plus) in [
            ("100G-WAN", Scheme::FixedGrid100G, false),
            ("RADWAN", Scheme::Radwan, false),
            ("FlexWAN", Scheme::FlexWan, false),
            ("FlexWAN+", Scheme::FlexWan, true),
        ] {
            let rep = restoration_report(&b, &cfg, scheme, scale, plus);
            let c = cdf(&rep.capabilities);
            let q = |q: f64| {
                let idx = ((c.len() as f64 * q).ceil() as usize).clamp(1, c.len()) - 1;
                format!("{:.3}", c[idx].0)
            };
            rows.push(vec![
                name.to_string(),
                q(0.1),
                q(0.5),
                q(0.9),
                format!("{:.3}", rep.mean_capability()),
            ]);
        }
        println!(
            "{}",
            table::render(&["scheme", "p10", "p50", "p90", "mean"], &rows)
        );
    }
    println!("paper: FlexWAN+ beats RADWAN even underloaded; operators balance");
    println!("       saved transponders against restoration performance.");
}
