//! Extension experiment (§8's motivation, quantified): what restored
//! optical capacity means for IP traffic. For each conduit-cut scenario
//! we route a traffic matrix over the surviving IP-link capacities with
//! the TE module — once without optical restoration, once with — and
//! report carried traffic and availability per scheme.
//!
//! "The higher restored capacity always reduces the loss of network
//! traffic and the network can achieve higher network availability under
//! failures." (§8)

use flexwan_bench::instances::{default_config, tbackbone_instance};
use flexwan_bench::table;
use flexwan_core::planning::plan_cached;
use flexwan_core::restore::{conduit_cut_scenarios, restore_cached, Restoration};
use flexwan_core::te::{network_from_plan, route_traffic, TrafficDemand};
use flexwan_core::Scheme;
use flexwan_topo::cache::RouteCache;
use flexwan_util::pool;

fn main() {
    table::banner(
        "TE availability (extension)",
        "Carried traffic fraction under conduit cuts, with vs without restoration (5x demand).",
    );
    let b = tbackbone_instance();
    let cfg = default_config();
    let scale = 5u64;
    let ip = b.ip.scaled(scale);
    // Traffic: 75 % of each IP link's capacity demand flows between its
    // endpoints (the network is overloaded at 5x, so even healthy routing
    // cannot carry quite everything — the §8 'overloaded' regime).
    let traffic: Vec<TrafficDemand> = ip
        .links()
        .iter()
        .map(|l| TrafficDemand {
            src: l.src,
            dst: l.dst,
            gbps: 0.75 * l.demand_gbps as f64,
        })
        .collect();
    // A deterministic sample of scenarios keeps the run short.
    let scenarios: Vec<_> = conduit_cut_scenarios(&b.optical)
        .into_iter()
        .step_by(3)
        .collect();
    // One route cache across all three schemes (candidate routes are
    // scheme-independent; detours are keyed by cut set), scenarios fanned
    // out on the deterministic pool — output is thread-count-invariant.
    let cache = RouteCache::new();
    let threads = pool::default_threads();

    let mut rows = Vec::new();
    for scheme in Scheme::ALL {
        let p = plan_cached(scheme, &b.optical, &ip, &cfg, &cache);
        let healthy = {
            let net = network_from_plan(b.optical.num_nodes(), &ip, &p, None);
            route_traffic(&net, &traffic, 2)
                .expect("IP graph connected")
                .carried_fraction()
        };
        let per_scenario = pool::par_map(&scenarios, threads, |s| {
            let r = restore_cached(&p, &b.optical, &ip, s, &[], &cfg, &cache);
            let empty = Restoration {
                restored: vec![],
                ..r.clone()
            };
            let net_cut = network_from_plan(b.optical.num_nodes(), &ip, &p, Some((s, &empty)));
            let net_rst = network_from_plan(b.optical.num_nodes(), &ip, &p, Some((s, &r)));
            let out_cut = route_traffic(&net_cut, &traffic, 2).expect("IP graph connected");
            let out_rst = route_traffic(&net_rst, &traffic, 2).expect("IP graph connected");
            (out_cut.carried_fraction(), out_rst.carried_fraction())
        });
        // Ordered reduce: summation order is fixed by scenario order, so
        // the float totals match the serial run bit for bit.
        let mut carried_no_restore = 0.0;
        let mut carried_restored = 0.0;
        let mut available = 0usize;
        for &(cut, rst) in &per_scenario {
            carried_no_restore += cut;
            carried_restored += rst;
            if rst >= 0.99 * healthy {
                available += 1;
            }
        }
        let n = scenarios.len() as f64;
        rows.push(vec![
            scheme.to_string(),
            format!("{:.3}", healthy),
            format!("{:.3}", carried_no_restore / n),
            format!("{:.3}", carried_restored / n),
            format!("{:.0}%", 100.0 * available as f64 / n),
        ]);
    }
    println!(
        "{}",
        table::render(
            &[
                "scheme",
                "healthy",
                "carried (cut only)",
                "carried (restored)",
                "availability"
            ],
            &rows
        )
    );
    println!("availability = fraction of cut scenarios carrying ≥99% of the healthy");
    println!("network's traffic after optical restoration.");
}
