//! Table 1: optical backbone infrastructure comparison — data rate,
//! channel spacing and OLS passband flexibility per approach.

use flexwan_bench::table;
use flexwan_core::Scheme;
use flexwan_optical::WssKind;

fn main() {
    table::banner(
        "Table 1",
        "Infrastructure comparison of the three backbone approaches.",
    );
    let rows: Vec<Vec<String>> = Scheme::ALL
        .iter()
        .map(|&s| {
            let rates = s.transponder().rates();
            let spacings: std::collections::BTreeSet<u16> = s
                .transponder()
                .formats()
                .iter()
                .map(|f| f.spacing.pixels())
                .collect();
            vec![
                s.to_string(),
                if rates.len() == 1 {
                    "fixed".into()
                } else {
                    format!("variable ({} rates)", rates.len())
                },
                if spacings.len() == 1 {
                    "fixed".into()
                } else {
                    format!("variable ({} widths)", spacings.len())
                },
                match s.wss() {
                    WssKind::FixedGrid { spacing } => format!("fix-grid {spacing}"),
                    WssKind::PixelWise => "dynamic (pixel-wise)".into(),
                },
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(
            &["approach", "data rate", "channel spacing", "OLS passband"],
            &rows
        )
    );
}
