//! Ablation (extension): incremental growth vs clairvoyant re-planning.
//! Growing 1x → 2x → 3x one step at a time, never touching live
//! wavelengths, costs some optimality versus planning 3x from scratch —
//! but moves zero channels (§9's smooth-evolution requirement).

use flexwan_bench::instances::{default_config, tbackbone_instance};
use flexwan_bench::table;
use flexwan_core::planning::{plan, plan_incremental};
use flexwan_core::Scheme;

fn main() {
    table::banner(
        "Ablation: incremental growth",
        "FlexWAN grown 1x→2x→3x incrementally vs re-planned from scratch.",
    );
    let b = tbackbone_instance();
    let cfg = default_config();

    let p1 = plan(Scheme::FlexWan, &b.optical, &b.ip, &cfg);
    let p2 = plan_incremental(&p1, &b.optical, &b.ip.scaled(2), &cfg);
    let p3 = plan_incremental(&p2, &b.optical, &b.ip.scaled(3), &cfg);
    let fresh3 = plan(Scheme::FlexWan, &b.optical, &b.ip.scaled(3), &cfg);

    let rows = vec![
        vec![
            "incremental 1x→2x→3x".to_string(),
            p3.transponder_count().to_string(),
            format!("{:.0}", p3.spectrum_usage_ghz()),
            p3.unmet_gbps().to_string(),
            "0 (by construction)".to_string(),
        ],
        vec![
            "fresh plan at 3x".to_string(),
            fresh3.transponder_count().to_string(),
            format!("{:.0}", fresh3.spectrum_usage_ghz()),
            fresh3.unmet_gbps().to_string(),
            "n/a (greenfield)".to_string(),
        ],
    ];
    println!(
        "{}",
        table::render(
            &[
                "strategy",
                "transponders",
                "spectrum GHz",
                "unmet Gbps",
                "wavelengths moved"
            ],
            &rows
        )
    );
    let overhead =
        100.0 * (p3.transponder_count() as f64 / fresh3.transponder_count() as f64 - 1.0);
    println!("incremental overhead: {overhead:+.1}% transponders for zero traffic impact.");
}
