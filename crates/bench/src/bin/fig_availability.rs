//! Availability surface (extension): multi-failure × demand-uncertainty
//! scenario sweep over the T-backbone. Every k ∈ 1..=3 row is crossed
//! with spare-transponder budgets and three demand scenarios (nominal
//! plus two seeded ±20% perturbations); each evaluation runs the
//! degradation ladder (heuristic restoration, then 1+1 protection).
//!
//! The run is self-checking: the surface is re-evaluated at 1, 2 and 4
//! pool threads and must render byte-identically, and the k = 1 row is
//! cross-checked cell by cell against a direct single-fiber restoration
//! sweep. The rendered surface is written to
//! `results/fig_availability.txt`, which CI diffs verbatim.

use flexwan_bench::availability::{availability_surface, AvailabilityConfig};
use flexwan_bench::instances::{default_config, tbackbone_instance};
use flexwan_bench::table;
use flexwan_core::planning::plan_cached;
use flexwan_core::restore::{one_fiber_scenarios, restore_cached};
use flexwan_core::scenario::{demand_scenarios, LEVEL_PROTECT};
use flexwan_core::{plan_protected_cached, Scheme};
use flexwan_topo::cache::RouteCache;

fn main() {
    table::banner(
        "Availability surface (extension)",
        "Survived/total scenarios per k simultaneous cuts x spare budget, FlexWAN ladder.",
    );
    // The §8 'overloaded' regime (5x demand): restoration contends for
    // spectrum, so the surface actually moves with k and spare budget.
    let b = {
        let mut b = tbackbone_instance();
        b.ip = b.ip.scaled(5);
        b
    };
    let cfg = default_config();
    // Exhaustive k = 1 (all 252 single-fiber cuts — the row the direct
    // sweep cross-checks); k = 2 and 3 fall past the limit and sample.
    let acfg = AvailabilityConfig {
        exhaustive_limit: 256,
        ..AvailabilityConfig::default()
    };
    let cache = RouteCache::new();

    let surface = availability_surface(&b, &cfg, Scheme::FlexWan, &acfg, &cache);

    // Self-check 1: byte-identical at 1, 2 and 4 pool threads.
    for threads in [1usize, 2, 4] {
        let mut a = acfg.clone();
        a.engine.threads = threads;
        let again = availability_surface(&b, &cfg, Scheme::FlexWan, &a, &cache);
        assert_eq!(
            again.render(),
            surface.render(),
            "surface changed at {threads} pool threads"
        );
    }

    // Self-check 2: the k = 1 row equals a direct single-fiber sweep
    // running the same ladder by hand (restore, then 1+1 protection).
    let demands = demand_scenarios(&b.ip, acfg.demand_scenarios, acfg.demand_spread, acfg.seed);
    for &budget in &acfg.engine.spare_budgets {
        let cell = surface.cell(1, budget).expect("k=1 row present");
        let (mut survived, mut affected, mut restored) = (0u64, 0u64, 0u64);
        for d in &demands {
            let ip = d.apply(&b.ip);
            let p = plan_cached(Scheme::FlexWan, &b.optical, &ip, &cfg, &cache);
            let prot = plan_protected_cached(Scheme::FlexWan, &b.optical, &ip, &cfg, &cache);
            let spares = vec![budget; ip.num_links()];
            for s in one_fiber_scenarios(&b.optical) {
                let r = restore_cached(&p, &b.optical, &ip, &s, &spares, &cfg, &cache);
                let mut got = r.restored_gbps;
                if got < r.affected_gbps && prot.capability_under(&ip, &s) >= 1.0 {
                    got = r.affected_gbps;
                }
                affected += r.affected_gbps;
                restored += got;
                if got >= r.affected_gbps {
                    survived += 1;
                }
            }
        }
        assert_eq!(
            cell.affected_gbps, affected,
            "k=1 spares+{budget}: affected"
        );
        if budget == 0 {
            // No allowance below budget 0: the cell IS the direct sweep.
            assert_eq!(cell.survived, survived, "k=1 spares+0: survived");
            assert_eq!(cell.restored_gbps, restored, "k=1 spares+0: restored");
        } else {
            // Budgets are allowances (running max over smaller budgets),
            // so a cell can only improve on the fixed-budget sweep.
            assert!(cell.survived >= survived, "k=1 spares+{budget}: survived");
            assert!(
                cell.restored_gbps >= restored,
                "k=1 spares+{budget}: restored"
            );
        }
    }

    let protect_lifts: u64 = surface
        .cells
        .iter()
        .map(|c| c.level_scenarios[LEVEL_PROTECT])
        .sum();
    let rendered = surface.render();
    print!("{rendered}");
    println!();
    println!("self-checks: thread-invariant at 1/2/4 workers; k=1 row matches the");
    println!("direct single-fiber sweep. {protect_lifts} evaluations were held by 1+1 protection.");

    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/fig_availability.txt", &rendered).expect("write results file");
}
