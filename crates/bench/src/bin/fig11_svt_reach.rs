//! Figure 11 / Table 2: SVT data rates and optical reaches per channel
//! spacing — the paper's testbed measurement, regenerated on the
//! simulated physical layer (flexwan-physim).

use flexwan_bench::experiments::svt_reach_table;
use flexwan_bench::table;

fn main() {
    table::banner(
        "Figure 11 / Table 2",
        "SVT reach (km) per (rate, spacing): paper testbed vs simulated testbed.",
    );
    let rows: Vec<Vec<String>> = svt_reach_table()
        .into_iter()
        .map(|r| {
            let ratio = f64::from(r.derived_km) / f64::from(r.paper_km);
            vec![
                format!("{} Gbps", r.rate_gbps),
                format!("{} GHz", r.spacing_ghz),
                r.paper_km.to_string(),
                r.derived_km.to_string(),
                format!("{ratio:.2}"),
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(
            &["rate", "spacing", "paper km", "simulated km", "ratio"],
            &rows
        )
    );
}
