//! Extension experiment: where to add capacity next. The dual values of
//! the TE max-throughput LP price each IP link's capacity — the classic
//! planner's signal for the next fiber build, here computed on the
//! overloaded (5x) T-backbone.

use flexwan_bench::instances::{default_config, tbackbone_instance};
use flexwan_bench::table;
use flexwan_core::planning::plan;
use flexwan_core::te::{link_capacity_values, network_from_plan, TrafficDemand};
use flexwan_core::Scheme;

fn main() {
    table::banner(
        "Shadow prices (extension)",
        "Marginal value of IP-link capacity at 5x demand (TE LP duals).",
    );
    let b = tbackbone_instance();
    let cfg = default_config();
    let ip = b.ip.scaled(5);
    let p = plan(Scheme::FlexWan, &b.optical, &ip, &cfg);
    let net = network_from_plan(b.optical.num_nodes(), &ip, &p, None);
    let traffic: Vec<TrafficDemand> = ip
        .links()
        .iter()
        .map(|l| TrafficDemand {
            src: l.src,
            dst: l.dst,
            gbps: 0.9 * l.demand_gbps as f64,
        })
        .collect();
    let values = link_capacity_values(&net, &traffic, 2).expect("connected");
    let mut ranked: Vec<(usize, f64)> = values.iter().copied().enumerate().collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    let rows: Vec<Vec<String>> = ranked
        .iter()
        .take(8)
        .map(|&(i, v)| {
            let l = &ip.links()[i];
            vec![
                format!(
                    "{}–{}",
                    b.optical.node(l.src).name,
                    b.optical.node(l.dst).name
                ),
                format!("{}", l.demand_gbps),
                format!("{:.0}", net.capacity_gbps[i]),
                format!("{v:.2}"),
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(
            &[
                "IP link",
                "demand Gbps",
                "capacity Gbps",
                "Gbps carried per +1 Gbps"
            ],
            &rows
        )
    );
    let priced = values.iter().filter(|&&v| v > 1e-9).count();
    println!(
        "{priced} of {} links carry a positive shadow price — the build-next list.",
        values.len()
    );
}
