//! Ablation (DESIGN.md §5.1): the ε of the objective `Σλ + ε·Σλ·Y` trades
//! transponder count (direct cost) against spectrum usage (indirect cost).

use flexwan_bench::instances::{default_config, tbackbone_instance};
use flexwan_bench::table;
use flexwan_core::planning::{plan, PlannerConfig};
use flexwan_core::Scheme;

fn main() {
    table::banner(
        "Ablation: epsilon",
        "FlexWAN at scale 1 as ε sweeps the direct/indirect cost balance.",
    );
    let b = tbackbone_instance();
    let rows: Vec<Vec<String>> = [0.0, 1e-4, 1e-3, 1e-2, 0.1, 1.0]
        .iter()
        .map(|&epsilon| {
            let cfg = PlannerConfig {
                epsilon,
                ..default_config()
            };
            let p = plan(Scheme::FlexWan, &b.optical, &b.ip, &cfg);
            vec![
                format!("{epsilon}"),
                p.transponder_count().to_string(),
                format!("{:.0}", p.spectrum_usage_ghz()),
                if p.is_feasible() {
                    "yes".into()
                } else {
                    "no".into()
                },
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(
            &["epsilon", "transponders", "spectrum GHz", "feasible"],
            &rows
        )
    );
    println!("finding: on the SVT capability table the transponder-count-minimal");
    println!("solution is also spectrum-minimal (wide formats carry more bits per GHz),");
    println!("so ε does not move the optimum — it matters only for transponder");
    println!("inventories whose wide formats are relatively spectrum-inefficient.");
}
