//! Ablation (DESIGN.md §5.5): FlexWAN+ spare fraction — how much of the
//! transponder saving to reinvest as restoration spares.

use flexwan_bench::instances::{default_config, tbackbone_instance};
use flexwan_bench::table;
use flexwan_core::planning::plan_cached;
use flexwan_core::restore::{
    conduit_cut_scenarios, flexwan_plus_extra_spares, restore_cached, restore_report,
};
use flexwan_core::Scheme;
use flexwan_topo::cache::RouteCache;
use flexwan_util::pool;

fn main() {
    table::banner(
        "Ablation: FlexWAN+ spare fraction",
        "Mean restoration capability at 5x as the spare pool scales.",
    );
    let b = tbackbone_instance();
    let cfg = default_config();
    let ip5 = b.ip.scaled(5);
    // Detour routes depend only on the cut set, not on the spare pool, so
    // the first fraction row warms the cache for the remaining three.
    let cache = RouteCache::new();
    let threads = pool::default_threads();
    let p = plan_cached(Scheme::FlexWan, &b.optical, &ip5, &cfg, &cache);
    let full = flexwan_plus_extra_spares(&b.optical, &ip5, &cfg);
    let scenarios = conduit_cut_scenarios(&b.optical);
    let rows: Vec<Vec<String>> = [0.0, 0.5, 1.0, 2.0]
        .iter()
        .map(|&frac| {
            let spares: Vec<u32> = full
                .iter()
                .map(|&s| (f64::from(s) * frac).round() as u32)
                .collect();
            let restored = pool::par_map(&scenarios, threads, |s| {
                restore_cached(&p, &b.optical, &ip5, s, &spares, &cfg, &cache)
            });
            let results: Vec<_> = scenarios
                .iter()
                .map(|s| s.probability)
                .zip(restored)
                .collect();
            let rep = restore_report(&results);
            let extra: u32 = spares.iter().sum();
            vec![
                format!("{:.1}x half-saving", frac),
                extra.to_string(),
                format!("{:.3}", rep.mean_capability()),
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(
            &["spare pool", "extra transponders", "mean capability"],
            &rows
        )
    );
}
