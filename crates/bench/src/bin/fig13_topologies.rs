//! Figure 13: (a) capacity-weighted optical path length distribution on
//! the T-backbone and CERNET topologies; (b) FlexWAN's reduced costs and
//! improved spectral efficiency on both.

use flexwan_bench::experiments::{capacity_weighted_lengths, gap_and_sse, headline};
use flexwan_bench::instances::{cernet_instance, default_config, tbackbone_instance};
use flexwan_bench::table;
use flexwan_core::planning::mean;
use flexwan_core::Scheme;

fn main() {
    table::banner(
        "Figure 13",
        "Two topologies: path-length distribution and FlexWAN's gains on each.",
    );
    let cfg = default_config();
    let nsfnet = flexwan_topo::nsfnet::nsfnet(&flexwan_topo::demand::ArrowDemandConfig {
        ip_links: 80,
        ..Default::default()
    });
    for (name, b) in [
        ("T-backbone", tbackbone_instance()),
        ("Cernet", cernet_instance()),
        ("NSFNET (extension)", nsfnet),
    ] {
        let mut weighted = capacity_weighted_lengths(&b);
        weighted.sort_by_key(|&(len, _)| len);
        let total: u64 = weighted.iter().map(|&(_, w)| w).sum();
        let mut acc = 0u64;
        let mut median = 0;
        for &(len, w) in &weighted {
            acc += w;
            if acc * 2 >= total {
                median = len;
                break;
            }
        }
        let h = headline(&b, &cfg, 1);
        let sse = |scheme| mean(&gap_and_sse(&b, &cfg, scheme).1);
        let flex_sse = sse(Scheme::FlexWan);
        let rows = vec![
            vec![
                "capacity-weighted median path (km)".to_string(),
                median.to_string(),
            ],
            vec![
                "transponders saved vs 100G-WAN / RADWAN (%)".to_string(),
                format!(
                    "{:.0} / {:.0}",
                    h.transponder_saving_pct[0], h.transponder_saving_pct[1]
                ),
            ],
            vec![
                "spectrum saved vs 100G-WAN / RADWAN (%)".to_string(),
                format!(
                    "{:.0} / {:.0}",
                    h.spectrum_saving_pct[0], h.spectrum_saving_pct[1]
                ),
            ],
            vec![
                "spectral efficiency gain vs 100G-WAN / RADWAN (%)".to_string(),
                format!(
                    "{:.0} / {:.0}",
                    100.0 * (flex_sse / sse(Scheme::FixedGrid100G) - 1.0),
                    100.0 * (flex_sse / sse(Scheme::Radwan) - 1.0)
                ),
            ],
        ];
        println!("--- {name} ---");
        println!("{}", table::render(&["metric", "value"], &rows));
    }
    println!("paper: gains consistent on both topologies; larger on the");
    println!("shorter-path T-backbone; SE gain up to 215% vs 100G-WAN.");
}
