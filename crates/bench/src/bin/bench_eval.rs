//! End-to-end timing harness for the PR 4 performance work: times the
//! three sweep-heavy workloads (scheme planning, the full conduit-cut
//! restoration sweep, the Figure 12 scale ladder) serially and on the
//! deterministic pool, verifies the outputs are identical, and writes
//! `BENCH_eval.json` (canonical JSON, sorted keys) for the CI regression
//! gate (`scripts/check_bench_eval.sh` vs `results/BENCH_eval.json`).
//!
//! Usage: `bench_eval [output-path]` (default `BENCH_eval.json`).

use std::time::Instant;

use flexwan_bench::experiments::{cost_vs_scale_threads, restoration_results};
use flexwan_bench::instances::{default_config, tbackbone_instance};
use flexwan_core::record_route_cache;
use flexwan_core::Scheme;
use flexwan_obs::Obs;
use flexwan_topo::cache::RouteCache;
use flexwan_util::json::{Num, Value};
use flexwan_util::pool;

const SWEEP_MAX_SCALE: u64 = 6;
const REPS: u32 = 3;

/// Best-of-[`REPS`] wall time: the minimum is the least-noise estimator
/// on a shared machine, and every repetition must produce the identical
/// result (the workloads are deterministic).
fn ms<R: PartialEq>(f: impl Fn() -> R) -> (R, f64) {
    let mut best = f64::INFINITY;
    let mut out: Option<R> = None;
    for _ in 0..REPS {
        let t0 = Instant::now();
        let r = f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        if let Some(prev) = &out {
            assert!(*prev == r, "repeated runs must agree");
        }
        out = Some(r);
    }
    (out.expect("REPS > 0"), best)
}

fn pair(serial_ms: f64, parallel_ms: f64) -> Value {
    Value::obj([
        ("serial_ms", Value::Number(Num::F(serial_ms))),
        ("parallel_ms", Value::Number(Num::F(parallel_ms))),
        ("speedup", Value::Number(Num::F(serial_ms / parallel_ms.max(1e-9)))),
    ])
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_eval.json".into());
    let b = tbackbone_instance();
    let cfg = default_config();
    let threads = pool::default_threads();
    let obs = Obs::new();

    // Plan: all three schemes at scale 1 (one-scale ladder on the pool).
    let (plan_s, plan_s_ms) = ms(|| cost_vs_scale_threads(&b, &cfg, 1, 1));
    let (plan_p, plan_p_ms) = ms(|| cost_vs_scale_threads(&b, &cfg, 1, threads));
    assert_eq!(plan_s, plan_p, "plan output must be thread-count-invariant");

    // Restore: every conduit-cut scenario against the FlexWAN plan.
    // Fresh cache inside every repetition so serial and parallel timings
    // both measure the cold-cache sweep.
    let (rest_s, rest_s_ms) = ms(|| {
        restoration_results(&b, &cfg, Scheme::FlexWan, 1, false, &RouteCache::new(), 1)
    });
    let (rest_p, rest_p_ms) = ms(|| {
        restoration_results(&b, &cfg, Scheme::FlexWan, 1, false, &RouteCache::new(), threads)
    });
    assert_eq!(rest_s, rest_p, "restore output must be thread-count-invariant");
    // One untimed pass with a fresh cache gives the deterministic
    // hit/miss/entry counts the regression gate pins exactly.
    let cache = RouteCache::new();
    let counted = restoration_results(&b, &cfg, Scheme::FlexWan, 1, false, &cache, threads);
    assert_eq!(counted, rest_p);
    record_route_cache(&obs, "bench_eval.restore", &cache);

    // Sweep: the Figure 12 cost-vs-scale ladder.
    let (sweep_s, sweep_s_ms) = ms(|| cost_vs_scale_threads(&b, &cfg, SWEEP_MAX_SCALE, 1));
    let (sweep_p, sweep_p_ms) =
        ms(|| cost_vs_scale_threads(&b, &cfg, SWEEP_MAX_SCALE, threads));
    assert_eq!(sweep_s, sweep_p, "sweep output must be thread-count-invariant");

    let doc = Value::obj([
        (
            "threads",
            Value::obj([
                ("serial", Value::Number(Num::U(1))),
                ("parallel", Value::Number(Num::U(threads as u64))),
            ]),
        ),
        ("plan", pair(plan_s_ms, plan_p_ms)),
        ("restore", pair(rest_s_ms, rest_p_ms)),
        ("sweep", pair(sweep_s_ms, sweep_p_ms)),
        (
            "route_cache",
            Value::obj([
                ("hits", Value::Number(Num::U(cache.hits()))),
                ("misses", Value::Number(Num::U(cache.misses()))),
                ("entries", Value::Number(Num::U(cache.len() as u64))),
            ]),
        ),
    ]);
    let text = flexwan_util::json::to_string_pretty(&doc);
    std::fs::write(&out_path, format!("{text}\n")).expect("write BENCH_eval.json");

    println!("{text}");
    println!();
    println!(
        "plan {plan_s_ms:.1}ms -> {plan_p_ms:.1}ms | restore {rest_s_ms:.1}ms -> \
         {rest_p_ms:.1}ms | sweep {sweep_s_ms:.1}ms -> {sweep_p_ms:.1}ms at {threads} thread(s)"
    );
    println!(
        "route cache: {} hits / {} misses / {} entries",
        cache.hits(),
        cache.misses(),
        cache.len()
    );
    print!("{}", obs.metrics_prometheus());
    eprintln!("wrote {out_path}");
}
