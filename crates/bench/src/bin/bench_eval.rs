//! End-to-end timing harness: times the three sweep-heavy workloads
//! (scheme planning, the full conduit-cut restoration sweep, the Figure
//! 12 scale ladder) serially and on the deterministic pool, plus the
//! exact-model section — standing Algorithm 1 build/solve and the
//! restoration-as-mutation sweep warm vs from-scratch, with a build-cost
//! scaling probe that pins the builder's linearity in the γ count — and
//! the churn section: the always-on service loop drilled with a seeded
//! mixed event stream, reporting p50/p99 reaction time and the exact
//! work counters (warm mutations, rebuilds, restored capacity).
//! Verifies every repetition produces identical outputs and writes
//! `BENCH_eval.json` (canonical JSON, sorted keys) for the CI regression
//! gate (`scripts/check_bench_eval.sh` vs `results/BENCH_eval.json`).
//!
//! Usage: `bench_eval [output-path]` (default `BENCH_eval.json`).

use std::time::Instant;

use flexwan_bench::availability::{availability_surface, AvailabilityConfig};
use flexwan_bench::churn::{churn_drill, ChurnDrillConfig};
use flexwan_bench::experiments::{cost_vs_scale_threads, restoration_results};
use flexwan_bench::instances::{default_config, tbackbone_instance};
use flexwan_core::planning::{PlanModel, PlannerConfig};
use flexwan_core::restore::one_fiber_scenarios;
use flexwan_core::scenario::{EngineConfig, LEVEL_EXACT, LEVEL_PROTECT};
use flexwan_core::Scheme;
use flexwan_core::{record_availability_surface, record_opt_model, record_route_cache};
use flexwan_obs::Obs;
use flexwan_optical::spectrum::SpectrumGrid;
use flexwan_solver::SolveOptions;
use flexwan_topo::cache::RouteCache;
use flexwan_topo::graph::Graph;
use flexwan_topo::ip::IpTopology;
use flexwan_topo::tbackbone::Backbone;
use flexwan_util::json::{Num, Value};
use flexwan_util::pool;

const SWEEP_MAX_SCALE: u64 = 6;
const REPS: u32 = 3;

/// Best-of-[`REPS`] wall time: the minimum is the least-noise estimator
/// on a shared machine, and every repetition must produce the identical
/// result (the workloads are deterministic).
fn ms<R: PartialEq>(f: impl Fn() -> R) -> (R, f64) {
    let mut best = f64::INFINITY;
    let mut out: Option<R> = None;
    for _ in 0..REPS {
        let t0 = Instant::now();
        let r = f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        if let Some(prev) = &out {
            assert!(*prev == r, "repeated runs must agree");
        }
        out = Some(r);
    }
    (out.expect("REPS > 0"), best)
}

/// Fixed small instance for the exact-model (Algorithm 1 MIP) timings:
/// the 4-node ring-plus-chord family of the validation suite, sized so
/// exact B&B stays fast in release builds.
fn exact_instance() -> (Graph, IpTopology, PlannerConfig) {
    let mut g = Graph::new();
    let a = g.add_node("a");
    let b = g.add_node("b");
    let c = g.add_node("c");
    let d = g.add_node("d");
    g.add_edge(a, b, 420);
    g.add_edge(b, c, 360);
    g.add_edge(c, d, 510);
    g.add_edge(d, a, 280);
    g.add_edge(a, c, 760);
    let mut ip = IpTopology::new();
    ip.add_link(a, b, 300);
    ip.add_link(a, c, 200);
    let cfg = PlannerConfig {
        grid: SpectrumGrid::new(12),
        k_paths: 2,
        ..Default::default()
    };
    (g, ip, cfg)
}

/// Single-link instance used only to measure model *build* cost at a
/// given grid size (never solved): γ count scales linearly with the
/// pixel count, so a linear builder keeps per-γ cost flat while the old
/// per-row full scans were quadratic.
fn build_only_instance(pixels: u32) -> (Graph, IpTopology, PlannerConfig) {
    let mut g = Graph::new();
    let a = g.add_node("a");
    let b = g.add_node("b");
    g.add_edge(a, b, 400);
    let mut ip = IpTopology::new();
    ip.add_link(a, b, 400);
    let cfg = PlannerConfig {
        grid: SpectrumGrid::new(pixels),
        k_paths: 1,
        ..Default::default()
    };
    (g, ip, cfg)
}

fn pair(serial_ms: f64, parallel_ms: f64) -> Value {
    Value::obj([
        ("serial_ms", Value::Number(Num::F(serial_ms))),
        ("parallel_ms", Value::Number(Num::F(parallel_ms))),
        (
            "speedup",
            Value::Number(Num::F(serial_ms / parallel_ms.max(1e-9))),
        ),
    ])
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_eval.json".into());
    let b = tbackbone_instance();
    let cfg = default_config();
    let threads = pool::default_threads();
    let obs = Obs::new();

    // Plan: all three schemes at scale 1 (one-scale ladder on the pool).
    let (plan_s, plan_s_ms) = ms(|| cost_vs_scale_threads(&b, &cfg, 1, 1));
    let (plan_p, plan_p_ms) = ms(|| cost_vs_scale_threads(&b, &cfg, 1, threads));
    assert_eq!(plan_s, plan_p, "plan output must be thread-count-invariant");

    // Restore: every conduit-cut scenario against the FlexWAN plan.
    // Fresh cache inside every repetition so serial and parallel timings
    // both measure the cold-cache sweep.
    let (rest_s, rest_s_ms) =
        ms(|| restoration_results(&b, &cfg, Scheme::FlexWan, 1, false, &RouteCache::new(), 1));
    let (rest_p, rest_p_ms) = ms(|| {
        restoration_results(
            &b,
            &cfg,
            Scheme::FlexWan,
            1,
            false,
            &RouteCache::new(),
            threads,
        )
    });
    assert_eq!(
        rest_s, rest_p,
        "restore output must be thread-count-invariant"
    );
    // One untimed pass with a fresh cache gives the deterministic
    // hit/miss/entry counts the regression gate pins exactly.
    let cache = RouteCache::new();
    let counted = restoration_results(&b, &cfg, Scheme::FlexWan, 1, false, &cache, threads);
    assert_eq!(counted, rest_p);
    record_route_cache(&obs, "bench_eval.restore", &cache);

    // Sweep: the Figure 12 cost-vs-scale ladder.
    let (sweep_s, sweep_s_ms) = ms(|| cost_vs_scale_threads(&b, &cfg, SWEEP_MAX_SCALE, 1));
    let (sweep_p, sweep_p_ms) = ms(|| cost_vs_scale_threads(&b, &cfg, SWEEP_MAX_SCALE, threads));
    assert_eq!(
        sweep_s, sweep_p,
        "sweep output must be thread-count-invariant"
    );

    // Exact model: standing Algorithm 1 build + solve, then the full
    // single-fiber restoration sweep expressed as mutations of the
    // standing model — once warm from the planning basis, once from
    // scratch (basis dropped before every cut) — cross-checked equal.
    let eopts = SolveOptions {
        max_nodes: 200_000,
        ..Default::default()
    };
    let mut exact_best = [f64::INFINITY; 4];
    let mut exact_sig: Option<(usize, u64, Vec<u64>)> = None;
    let mut exact_pm: Option<PlanModel> = None;
    for _ in 0..REPS {
        let (eg, eip, ecfg) = exact_instance();
        let t = Instant::now();
        let mut pm = PlanModel::build_restorable(Scheme::FlexWan, &eg, &eip, &ecfg);
        let build = t.elapsed().as_secs_f64() * 1e3;
        let t = Instant::now();
        let eplan = pm.solve(&eopts).expect("exact bench instance is feasible");
        let solve = t.elapsed().as_secs_f64() * 1e3;
        let scenarios = one_fiber_scenarios(&eg);
        let t = Instant::now();
        let warm: Vec<u64> = scenarios
            .iter()
            .map(|s| {
                pm.restore_after_cut(&eg, s, &[], &eopts)
                    .expect("warm mutated re-solve")
                    .restored_gbps
            })
            .collect();
        let warm_ms = t.elapsed().as_secs_f64() * 1e3;
        let t = Instant::now();
        let scratch: Vec<u64> = scenarios
            .iter()
            .map(|s| {
                pm.drop_basis();
                pm.restore_after_cut(&eg, s, &[], &eopts)
                    .expect("from-scratch mutated re-solve")
                    .restored_gbps
            })
            .collect();
        let scratch_ms = t.elapsed().as_secs_f64() * 1e3;
        assert_eq!(
            warm, scratch,
            "warm mutated re-solves must equal from-scratch"
        );
        let sig = (pm.space().gammas().len(), eplan.objective.to_bits(), warm);
        if let Some(prev) = &exact_sig {
            assert!(*prev == sig, "repeated exact runs must agree");
        }
        exact_sig = Some(sig);
        for (slot, v) in [build, solve, warm_ms, scratch_ms].into_iter().enumerate() {
            exact_best[slot] = exact_best[slot].min(v);
        }
        exact_pm = Some(pm);
    }
    let exact_sig = exact_sig.expect("REPS > 0");
    let exact_restored: u64 = exact_sig.2.iter().sum();
    record_opt_model(
        &obs,
        "bench_eval.exact",
        exact_pm.as_ref().expect("REPS > 0"),
    );

    // Build-cost scaling: the γ count doubles with the grid, so a linear
    // builder keeps the time ratio near the γ ratio (the pre-refactor
    // per-row full scans were quadratic — ratio near the γ ratio squared).
    let (gam_small, scale_small_ms) = ms(|| {
        let (g, ip, cfg) = build_only_instance(2048);
        PlanModel::build(Scheme::FlexWan, &g, &ip, &cfg)
            .space()
            .gammas()
            .len()
    });
    let (gam_large, scale_large_ms) = ms(|| {
        let (g, ip, cfg) = build_only_instance(4096);
        PlanModel::build(Scheme::FlexWan, &g, &ip, &cfg)
            .space()
            .gammas()
            .len()
    });

    // Churn: the always-on service loop drilled with a seeded mixed
    // event stream over a faulty transport (unlimited budget, so every
    // counter is machine-independent). Work counters must agree across
    // repetitions; timings take the best-of-REPS like everything else.
    let churn_cfg = ChurnDrillConfig::default();
    let mut churn_counters = None;
    let mut churn_p50 = f64::INFINITY;
    let mut churn_p99 = f64::INFINITY;
    for _ in 0..REPS {
        let rep = churn_drill(&churn_cfg);
        if let Some(prev) = &churn_counters {
            assert!(*prev == rep.counters, "repeated churn drills must agree");
        }
        churn_counters = Some(rep.counters);
        churn_p50 = churn_p50.min(rep.reaction_p50_ms);
        churn_p99 = churn_p99.min(rep.reaction_p99_ms);
    }
    let churn_counters = churn_counters.expect("REPS > 0");

    // Scenario engine: the multi-failure × demand-uncertainty sweep on
    // the exact instance with the standing model attached as the
    // ladder's top rung — k ∈ 1..=2 exhaustively, two demand scenarios,
    // two spare budgets. The rendered surface must be byte-identical
    // across repetitions (enforced by `ms`) and across thread counts;
    // its counters are machine-independent and gated exactly.
    let scen_backbone = {
        let (eg, eip, _) = exact_instance();
        Backbone {
            optical: eg,
            ip: eip,
        }
    };
    let (_, _, scen_cfg) = exact_instance();
    let scen_acfg = AvailabilityConfig {
        k_max: 2,
        exhaustive_limit: 16,
        samples: 8,
        seed: 7,
        demand_scenarios: 1,
        demand_spread: 0.2,
        engine: EngineConfig {
            spare_budgets: vec![0, 1],
            threads: 1,
            solve: eopts.clone(),
            protection: true,
        },
        exact: true,
    };
    let (scen_render_s, scen_s_ms) = ms(|| {
        availability_surface(
            &scen_backbone,
            &scen_cfg,
            Scheme::FlexWan,
            &scen_acfg,
            &RouteCache::new(),
        )
        .render()
    });
    let mut scen_acfg_p = scen_acfg.clone();
    scen_acfg_p.engine.threads = threads;
    let (scen_render_p, scen_p_ms) = ms(|| {
        availability_surface(
            &scen_backbone,
            &scen_cfg,
            Scheme::FlexWan,
            &scen_acfg_p,
            &RouteCache::new(),
        )
        .render()
    });
    assert_eq!(
        scen_render_s, scen_render_p,
        "availability surface must be thread-count-invariant"
    );
    let scen_surface = availability_surface(
        &scen_backbone,
        &scen_cfg,
        Scheme::FlexWan,
        &scen_acfg_p,
        &RouteCache::new(),
    );
    assert_eq!(scen_surface.render(), scen_render_p);
    record_availability_surface(&obs, "bench_eval.scenario", &scen_surface);
    let scen_evals: u64 = scen_surface.cells.iter().map(|c| c.scenarios).sum();
    let scen_survived: u64 = scen_surface.cells.iter().map(|c| c.survived).sum();
    let scen_restored: u64 = scen_surface.cells.iter().map(|c| c.restored_gbps).sum();
    let scen_exact: u64 = scen_surface
        .cells
        .iter()
        .map(|c| c.level_scenarios[LEVEL_EXACT])
        .sum();
    let scen_protect: u64 = scen_surface
        .cells
        .iter()
        .map(|c| c.level_scenarios[LEVEL_PROTECT])
        .sum();

    let doc = Value::obj([
        (
            "threads",
            Value::obj([
                ("serial", Value::Number(Num::U(1))),
                ("parallel", Value::Number(Num::U(threads as u64))),
            ]),
        ),
        ("plan", pair(plan_s_ms, plan_p_ms)),
        ("restore", pair(rest_s_ms, rest_p_ms)),
        ("sweep", pair(sweep_s_ms, sweep_p_ms)),
        (
            "exact",
            Value::obj([
                ("build_ms", Value::Number(Num::F(exact_best[0]))),
                ("solve_ms", Value::Number(Num::F(exact_best[1]))),
                ("resolve_warm_ms", Value::Number(Num::F(exact_best[2]))),
                ("resolve_scratch_ms", Value::Number(Num::F(exact_best[3]))),
                ("gammas", Value::Number(Num::U(exact_sig.0 as u64))),
                ("restored_gbps_total", Value::Number(Num::U(exact_restored))),
            ]),
        ),
        (
            "exact_build_scaling",
            Value::obj([
                ("gammas_small", Value::Number(Num::U(gam_small as u64))),
                ("small_ms", Value::Number(Num::F(scale_small_ms))),
                ("gammas_large", Value::Number(Num::U(gam_large as u64))),
                ("large_ms", Value::Number(Num::F(scale_large_ms))),
                (
                    "gamma_ratio",
                    Value::Number(Num::F(gam_large as f64 / gam_small as f64)),
                ),
                (
                    "time_ratio",
                    Value::Number(Num::F(scale_large_ms / scale_small_ms.max(1e-9))),
                ),
            ]),
        ),
        (
            "churn",
            Value::obj([
                ("reaction_p50_ms", Value::Number(Num::F(churn_p50))),
                ("reaction_p99_ms", Value::Number(Num::F(churn_p99))),
                ("ticks", Value::Number(Num::U(churn_counters.ticks))),
                (
                    "events_applied",
                    Value::Number(Num::U(churn_counters.events_applied)),
                ),
                (
                    "warm_mutations",
                    Value::Number(Num::U(churn_counters.warm_mutations)),
                ),
                ("rebuilds", Value::Number(Num::U(churn_counters.rebuilds))),
                (
                    "restored_gbps_total",
                    Value::Number(Num::U(churn_counters.restored_gbps_total)),
                ),
            ]),
        ),
        (
            "route_cache",
            Value::obj([
                ("hits", Value::Number(Num::U(cache.hits()))),
                ("misses", Value::Number(Num::U(cache.misses()))),
                ("entries", Value::Number(Num::U(cache.len() as u64))),
            ]),
        ),
        (
            "scenario",
            Value::obj([
                ("serial_ms", Value::Number(Num::F(scen_s_ms))),
                ("parallel_ms", Value::Number(Num::F(scen_p_ms))),
                (
                    "cells",
                    Value::Number(Num::U(scen_surface.cells.len() as u64)),
                ),
                ("evaluations", Value::Number(Num::U(scen_evals))),
                ("survived", Value::Number(Num::U(scen_survived))),
                ("restored_gbps_total", Value::Number(Num::U(scen_restored))),
                ("exact_evaluations", Value::Number(Num::U(scen_exact))),
                ("protect_evaluations", Value::Number(Num::U(scen_protect))),
            ]),
        ),
    ]);
    let text = flexwan_util::json::to_string_pretty(&doc);
    std::fs::write(&out_path, format!("{text}\n")).expect("write BENCH_eval.json");

    println!("{text}");
    println!();
    println!(
        "plan {plan_s_ms:.1}ms -> {plan_p_ms:.1}ms | restore {rest_s_ms:.1}ms -> \
         {rest_p_ms:.1}ms | sweep {sweep_s_ms:.1}ms -> {sweep_p_ms:.1}ms at {threads} thread(s)"
    );
    println!(
        "route cache: {} hits / {} misses / {} entries",
        cache.hits(),
        cache.misses(),
        cache.len()
    );
    println!(
        "exact: build {:.2}ms solve {:.1}ms | resolve warm {:.1}ms vs scratch {:.1}ms \
         ({} gammas, {exact_restored} Gbps restored across the sweep)",
        exact_best[0], exact_best[1], exact_best[2], exact_best[3], exact_sig.0
    );
    println!(
        "exact build scaling: {gam_small} gammas in {scale_small_ms:.2}ms -> {gam_large} \
         gammas in {scale_large_ms:.2}ms (time ratio {:.2} vs gamma ratio {:.2})",
        scale_large_ms / scale_small_ms.max(1e-9),
        gam_large as f64 / gam_small as f64
    );
    println!(
        "churn: reaction p50 {churn_p50:.2}ms p99 {churn_p99:.2}ms over {} ticks \
         ({} events, {} warm mutations, {} rebuilds, {} Gbps restored)",
        churn_counters.ticks,
        churn_counters.events_applied,
        churn_counters.warm_mutations,
        churn_counters.rebuilds,
        churn_counters.restored_gbps_total
    );
    println!(
        "scenario: {scen_s_ms:.1}ms -> {scen_p_ms:.1}ms | {} cells, {scen_evals} evaluations \
         ({scen_survived} survived, {scen_restored} Gbps restored; levels \
         {scen_exact} exact / {scen_protect} protect)",
        scen_surface.cells.len()
    );
    print!("{}", obs.metrics_prometheus());
    eprintln!("wrote {out_path}");
}
