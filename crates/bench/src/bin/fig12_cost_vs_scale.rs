//! Figure 12: (a) transponder count and (b) spectrum usage vs bandwidth
//! capacity scale, for 100G-WAN, RADWAN and FlexWAN — plus the §7
//! headline savings and maximum supported scales.

use flexwan_bench::experiments::{cost_vs_scale_threads, headline};
use flexwan_bench::instances::{default_config, tbackbone_instance};
use flexwan_bench::table;
use flexwan_util::pool;

fn main() {
    table::banner(
        "Figure 12",
        "Transponders & spectrum vs capacity scale ('-' = demand not fully met).",
    );
    let b = tbackbone_instance();
    let cfg = default_config();
    // Thread-count-invariant: the deterministic pool makes this table
    // byte-identical whatever FLEXWAN_THREADS says.
    let rows: Vec<Vec<String>> = cost_vs_scale_threads(&b, &cfg, 10, pool::default_threads())
        .into_iter()
        .map(|(s, costs)| {
            let mut row = vec![format!("{s}x")];
            for c in &costs {
                row.push(if c.feasible {
                    c.transponders.to_string()
                } else {
                    "-".into()
                });
            }
            for c in &costs {
                row.push(if c.feasible {
                    format!("{:.0}", c.spectrum_ghz)
                } else {
                    "-".into()
                });
            }
            row
        })
        .collect();
    println!(
        "{}",
        table::render(
            &[
                "scale",
                "100G tr",
                "RADWAN tr",
                "FlexWAN tr",
                "100G GHz",
                "RADWAN GHz",
                "FlexWAN GHz"
            ],
            &rows
        )
    );
    let h = headline(&b, &cfg, 14);
    println!(
        "FlexWAN saves {:.0}% / {:.0}% transponders vs 100G-WAN / RADWAN (paper: 85% / 57%)",
        h.transponder_saving_pct[0], h.transponder_saving_pct[1]
    );
    println!(
        "FlexWAN saves {:.0}% / {:.0}% spectrum     vs 100G-WAN / RADWAN (paper: 67% / 36%)",
        h.spectrum_saving_pct[0], h.spectrum_saving_pct[1]
    );
    println!(
        "max supported scales: 100G-WAN {}x, RADWAN {}x, FlexWAN {}x (paper: 3x / 5x / 8x)",
        h.max_scale[0], h.max_scale[1], h.max_scale[2]
    );
}
