//! Figure 2(a): distribution of optical path lengths in the production
//! WAN (≈50 % shorter than 200 km, tail beyond 2000 km).

use flexwan_bench::experiments::path_lengths;
use flexwan_bench::instances::tbackbone_instance;
use flexwan_bench::table;
use flexwan_core::planning::cdf;

fn main() {
    table::banner(
        "Figure 2(a)",
        "CDF of optical path lengths across all IP links (T-backbone stand-in).",
    );
    let lengths = path_lengths(&tbackbone_instance());
    let curve = cdf(&lengths);
    let rows: Vec<Vec<String>> = [0.10, 0.25, 0.50, 0.75, 0.90, 0.99, 1.0]
        .iter()
        .map(|&q| {
            let idx = ((curve.len() as f64 * q).ceil() as usize).clamp(1, curve.len()) - 1;
            vec![format!("{q:.2}"), curve[idx].0.to_string()]
        })
        .collect();
    println!("{}", table::render(&["CDF", "path length (km)"], &rows));
    let short = lengths.iter().filter(|&&d| d < 200).count() as f64 / lengths.len() as f64;
    println!("fraction of paths < 200 km: {short:.2}  (paper: ≈0.50)");
}
