//! Ablation (DESIGN.md §5.2): the K of K-shortest-routes — how many
//! candidate routes per IP link the planner may split demand across.

use flexwan_bench::instances::{default_config, tbackbone_instance};
use flexwan_bench::table;
use flexwan_core::planning::{max_feasible_scale, plan, PlannerConfig};
use flexwan_core::Scheme;

fn main() {
    table::banner(
        "Ablation: K candidate routes",
        "FlexWAN cost at scale 1 and max supported scale as K grows.",
    );
    let b = tbackbone_instance();
    let rows: Vec<Vec<String>> = [1usize, 2, 3, 5, 8]
        .iter()
        .map(|&k| {
            let cfg = PlannerConfig {
                k_paths: k,
                ..default_config()
            };
            let p = plan(Scheme::FlexWan, &b.optical, &b.ip, &cfg);
            let maxs = max_feasible_scale(Scheme::FlexWan, &b.optical, &b.ip, &cfg, 12);
            vec![
                k.to_string(),
                p.transponder_count().to_string(),
                p.unmet_gbps().to_string(),
                format!("{maxs}x"),
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(&["K", "transponders", "unmet Gbps", "max scale"], &rows)
    );
    println!("expected: more candidate routes raise the supportable scale, with");
    println!("diminishing returns once route diversity is exhausted.");
}
