//! Churn drill: reaction-time distribution of the always-on churn
//! service (DESIGN.md §10) under a deterministic mixed event stream.
//!
//! Not a statistical microbenchmark — a drill. It stands up a
//! [`ChurnService`] over a small diverse backbone, pushes a seeded
//! stream of demand deltas, fiber cuts, repairs and telemetry drift
//! through the event-stream fault injector (drops, duplicates,
//! reorders, stale redeliveries), and reports per-tick reaction-time
//! quantiles plus the deterministic work counters (events applied,
//! warm mutations, rebuilds, ladder-level ticks). The counters are
//! exact-reproducible for a given `(events, seed)` pair — the CI gate
//! pins them — while the timings get a tolerance like every other
//! wall-clock section of `BENCH_eval.json`.

use flexwan_core::planning::PlannerConfig;
use flexwan_core::Scheme;
use flexwan_ctrl::faults::StreamFaults;
use flexwan_ctrl::service::{ChurnEvent, ChurnService, EventLog, SeqEvent, ServiceConfig};
use flexwan_ctrl::{FaultInjector, FaultPlan};
use flexwan_obs::Obs;
use flexwan_optical::spectrum::SpectrumGrid;
use flexwan_topo::graph::{EdgeId, Graph};
use flexwan_topo::ip::{IpLinkId, IpTopology};

/// Drill parameters.
#[derive(Debug, Clone)]
pub struct ChurnDrillConfig {
    /// Canonical events to generate.
    pub events: usize,
    /// Stream-generator seed (the fault injector derives its own).
    pub seed: u64,
    /// Delivery batch size (events per service tick, before faults).
    pub batch: usize,
    /// Per-tick deadline budget, ns (`u64::MAX` disables degradation —
    /// required when the counters must be machine-independent).
    pub tick_budget_ns: u64,
}

impl Default for ChurnDrillConfig {
    fn default() -> Self {
        ChurnDrillConfig {
            events: 120,
            seed: 7,
            batch: 4,
            tick_budget_ns: u64::MAX,
        }
    }
}

/// Deterministic work done by one drill run. Independent of the machine
/// (and of the wall clock) for a fixed [`ChurnDrillConfig`] with an
/// unlimited budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChurnDrillCounters {
    /// Service ticks executed.
    pub ticks: u64,
    /// Canonical events applied (equals the stream length).
    pub events_applied: u64,
    /// Warm standing-model mutations.
    pub warm_mutations: u64,
    /// Full standing-model rebuilds.
    pub rebuilds: u64,
    /// Ticks that blew their deadline budget.
    pub deadline_blown: u64,
    /// Ticks whose restoration landed on each ladder level.
    pub level_ticks: [u64; 3],
    /// Capacity restored, summed over every tick, Gbps.
    pub restored_gbps_total: u64,
}

/// One drill run: deterministic counters plus wall-clock reaction-time
/// quantiles (exact order statistics over the per-tick samples, not
/// histogram-bucket interpolation).
#[derive(Debug, Clone)]
pub struct ChurnDrillReport {
    /// Machine-independent work counters.
    pub counters: ChurnDrillCounters,
    /// Median per-tick reaction time, ms.
    pub reaction_p50_ms: f64,
    /// 99th-percentile per-tick reaction time, ms.
    pub reaction_p99_ms: f64,
}

/// The drill backbone: 4 nodes with detour diversity, so every cut the
/// stream can issue — including the (0,1) double cut — leaves an
/// alternate route. Deliberately small spectrum grid so exact B&B stays
/// fast even in debug builds (same sizing as the soak test).
fn drill_backbone() -> (Graph, IpTopology, PlannerConfig) {
    let mut g = Graph::new();
    let a = g.add_node("a");
    let b = g.add_node("b");
    let c = g.add_node("c");
    let d = g.add_node("d");
    g.add_edge(a, b, 400);
    g.add_edge(b, c, 400);
    g.add_edge(a, c, 900);
    g.add_edge(c, d, 400);
    g.add_edge(a, d, 900);
    let mut ip = IpTopology::new();
    ip.add_link(a, c, 300);
    ip.add_link(a, d, 200);
    let cfg = PlannerConfig {
        grid: SpectrumGrid::new(12),
        k_paths: 2,
        ..Default::default()
    };
    (g, ip, cfg)
}

/// Split-mix generator: the drill only needs reproducibility.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A deterministic mixed-churn stream: 50% sub-threshold drift, 20%
/// demand resizes, 20% cuts of fibers {0, 1}, 10% repairs; every cut is
/// eventually repaired. The emitted per-fiber drift sum is bounded to
/// ±9.5 dB (out-of-band deltas are flipped), so the service-side
/// accumulator — a difference of two in-band sums, reset on repair —
/// never reaches the 20 dB cut-escalation threshold regardless of
/// stream length.
fn churn_stream(n: usize, seed: u64) -> Vec<ChurnEvent> {
    let mut mix = Mix(seed);
    let mut cut: Vec<EdgeId> = Vec::new();
    let mut drift = [0.0f64; 5];
    let mut events = Vec::with_capacity(n + 2);
    while events.len() < n {
        match mix.below(10) {
            0..=4 => {
                let f = mix.below(5) as usize;
                let mut delta = if mix.below(2) == 0 { -0.5 } else { 0.4 };
                if (drift[f] + delta).abs() >= 9.5 {
                    delta = if delta < 0.0 { 0.4 } else { -0.5 };
                }
                drift[f] += delta;
                events.push(ChurnEvent::TelemetryDrift {
                    fiber: EdgeId(f as u32),
                    delta_db: delta,
                });
            }
            5 | 6 => events.push(ChurnEvent::DemandDelta {
                link: IpLinkId(mix.below(2) as u32),
                demand_gbps: 100 * (2 + mix.below(2)),
            }),
            7 | 8 => {
                let f = EdgeId(mix.below(2) as u32);
                if !cut.contains(&f) {
                    cut.push(f);
                    events.push(ChurnEvent::FiberCut(f));
                }
            }
            _ => {
                if !cut.is_empty() {
                    events.push(ChurnEvent::FiberRepair(cut.remove(0)));
                }
            }
        }
    }
    for f in cut {
        events.push(ChurnEvent::FiberRepair(f));
    }
    events
}

/// Exact order-statistic quantile (nearest-rank on the sorted samples).
fn quantile_ms(sorted_ns: &[u64], q: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let rank = ((sorted_ns.len() as f64 * q).ceil() as usize).clamp(1, sorted_ns.len());
    sorted_ns[rank - 1] as f64 / 1e6
}

/// Runs the churn drill: a seeded event stream delivered through a
/// faulty transport, one service tick per delivery batch, followed by a
/// flush of whatever the faults dropped. Panics if the service fails to
/// converge (missed events) — the drill doubles as a soak assertion.
pub fn churn_drill(dc: &ChurnDrillConfig) -> ChurnDrillReport {
    let (g, ip, cfg) = drill_backbone();
    let svc_cfg = ServiceConfig {
        tick_budget_ns: dc.tick_budget_ns,
        ..ServiceConfig::default()
    };
    let mut svc = ChurnService::new(&g, &ip, Scheme::FlexWan, cfg, svc_cfg)
        .expect("drill backbone is feasible");
    svc.set_obs(Obs::new());

    let mut log = EventLog::new();
    let stamped: Vec<SeqEvent> = churn_stream(dc.events, dc.seed)
        .into_iter()
        .map(|e| log.append(e))
        .collect();
    let injector = FaultInjector::new(
        FaultPlan {
            seed: dc.seed.wrapping_mul(31).wrapping_add(99),
            ..FaultPlan::none()
        }
        .with_stream(StreamFaults {
            drop_prob: 0.10,
            duplicate_prob: 0.10,
            reorder_prob: 0.10,
            stale_prob: 0.05,
        }),
    );

    let mut reactions: Vec<u64> = Vec::new();
    let mut restored_total: u64 = 0;
    for batch in stamped.chunks(dc.batch.max(1)) {
        let perturbed = injector.perturb_stream(batch);
        let rep = svc.deliver(&log, &perturbed);
        reactions.push(rep.reaction_ns);
        restored_total += rep.restored_gbps;
    }
    let tail = svc.flush(&log);
    if tail.applied > 0 {
        reactions.push(tail.reaction_ns);
        restored_total += tail.restored_gbps;
    }
    assert_eq!(
        svc.state().next_seq,
        log.len(),
        "drill did not converge: events left behind"
    );

    let stats = svc.stats();
    let counters = ChurnDrillCounters {
        ticks: svc.journal().len() as u64,
        events_applied: stats.events_applied,
        warm_mutations: stats.warm_mutations,
        rebuilds: stats.rebuilds,
        deadline_blown: stats.deadline_blown,
        level_ticks: stats.level_ticks,
        restored_gbps_total: restored_total,
    };
    reactions.sort_unstable();
    ChurnDrillReport {
        counters,
        reaction_p50_ms: quantile_ms(&reactions, 0.50),
        reaction_p99_ms: quantile_ms(&reactions, 0.99),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drill_counters_are_reproducible() {
        let dc = ChurnDrillConfig {
            events: 24,
            ..ChurnDrillConfig::default()
        };
        let a = churn_drill(&dc);
        let b = churn_drill(&dc);
        assert_eq!(a.counters, b.counters, "same seed, same work");
        assert_eq!(a.counters.events_applied as usize, count_stream(&dc));
        assert!(a.reaction_p50_ms <= a.reaction_p99_ms);
    }

    fn count_stream(dc: &ChurnDrillConfig) -> usize {
        churn_stream(dc.events, dc.seed).len()
    }

    #[test]
    fn quantiles_are_nearest_rank() {
        let ns: Vec<u64> = (1..=100).map(|i| i * 1_000_000).collect();
        assert_eq!(quantile_ms(&ns, 0.50), 50.0);
        assert_eq!(quantile_ms(&ns, 0.99), 99.0);
        assert_eq!(quantile_ms(&[], 0.99), 0.0);
    }
}
