//! Plain-text table rendering for the experiment binaries.
//!
//! The binaries print the same rows/series the paper's figures plot, as
//! aligned text tables — easy to diff, easy to paste into EXPERIMENTS.md.

/// Renders a table: header row + data rows, columns padded to content.
pub fn render(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for r in rows {
        assert_eq!(r.len(), cols, "row arity mismatch");
        for (i, cell) in r.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for r in rows {
        out.push_str(&fmt_row(r, &widths));
        out.push('\n');
    }
    out
}

/// Formats a float with `digits` decimals.
pub fn f(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

/// Formats an optional value, `-` when absent (infeasible).
pub fn opt<T: std::fmt::Display>(v: Option<T>) -> String {
    match v {
        Some(x) => x.to_string(),
        None => "-".to_string(),
    }
}

/// Prints a figure banner.
pub fn banner(title: &str, caption: &str) {
    println!("== {title} ==");
    println!("{caption}");
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let s = render(
            &["scale", "value"],
            &[vec!["1".into(), "10".into()], vec!["10".into(), "2".into()]],
        );
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("scale"));
        assert!(lines[2].ends_with("10"));
    }

    #[test]
    fn helpers() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(opt::<u32>(None), "-");
        assert_eq!(opt(Some(5)), "5");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let _ = render(&["a", "b"], &[vec!["1".into()]]);
    }
}
