//! Canonical evaluation instances: the synthetic T-backbone and the
//! CERNET backbone, with the planner configuration used throughout §7–§8.

use flexwan_core::planning::PlannerConfig;
use flexwan_topo::cernet::cernet;
use flexwan_topo::demand::ArrowDemandConfig;
use flexwan_topo::tbackbone::{t_backbone, Backbone, TBackboneConfig};

/// The default T-backbone instance (seeded; see `flexwan-topo`).
pub fn tbackbone_instance() -> Backbone {
    t_backbone(&TBackboneConfig::default())
}

/// The default CERNET instance with ARROW-style demands.
pub fn cernet_instance() -> Backbone {
    cernet(&ArrowDemandConfig::default())
}

/// The planner configuration used by every §7–§8 experiment: K = 5
/// candidate routes (the backbone's parallel-conduit structure rewards a
/// slightly deeper route set), ε = 10⁻³, the full C-band.
pub fn default_config() -> PlannerConfig {
    PlannerConfig {
        k_paths: 5,
        ..PlannerConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instances_are_stable() {
        let a = tbackbone_instance();
        let b = tbackbone_instance();
        assert_eq!(a.optical, b.optical);
        let c = cernet_instance();
        assert_eq!(c.optical.num_nodes(), 35);
    }
}
