//! The availability-surface experiment: multi-failure × demand-uncertainty
//! scenario sweeps over a backbone, aggregated per (k, spare-budget) cell.
//!
//! A thin harness over [`flexwan_core::scenario`]: it generates the
//! scenario suite (exhaustive k-cuts where they fit, seeded samples
//! past the limit), the demand-perturbation set, optionally stands up
//! the exact model as the ladder's top rung, and runs the engine. The
//! output is byte-stable — the regeneration binary and the CI sweep
//! gate diff the rendered surface verbatim.

use flexwan_core::planning::{PlanModel, PlannerConfig};
use flexwan_core::scenario::{
    demand_scenarios, scenario_suite, AvailabilitySurface, EngineConfig, ScenarioEngine,
};
use flexwan_core::Scheme;
use flexwan_topo::cache::RouteCache;
use flexwan_topo::tbackbone::Backbone;

/// Knobs for one availability sweep.
#[derive(Debug, Clone)]
pub struct AvailabilityConfig {
    /// Largest simultaneous-cut count (surface rows are `k ∈ 1..=k_max`).
    pub k_max: usize,
    /// Enumerate a k row exhaustively while `C(fibers, k)` fits here.
    pub exhaustive_limit: usize,
    /// Seeded sample size for rows past the exhaustive limit.
    pub samples: usize,
    /// Seed for sampled cuts and demand perturbations.
    pub seed: u64,
    /// Perturbed demand scenarios alongside the nominal one.
    pub demand_scenarios: usize,
    /// Multiplicative demand spread (factors in `[1 − s, 1 + s]`).
    pub demand_spread: f64,
    /// Engine knobs: spare budgets, threads, warm-solve options,
    /// protection rung.
    pub engine: EngineConfig,
    /// Stand up the exact model ([`PlanModel::build_restorable`]) as
    /// the ladder's top rung for nominal-demand scenarios.
    pub exact: bool,
}

impl Default for AvailabilityConfig {
    fn default() -> Self {
        AvailabilityConfig {
            k_max: 3,
            exhaustive_limit: 64,
            samples: 24,
            seed: 7,
            demand_scenarios: 2,
            demand_spread: 0.2,
            engine: EngineConfig::default(),
            exact: false,
        }
    }
}

/// Runs one availability sweep: suite generation, demand perturbation,
/// optional exact-rung attach, engine evaluation. Deterministic for a
/// given `(backbone, cfg, scheme, acfg)`; `cache` is shared memoization
/// and never changes results.
pub fn availability_surface(
    backbone: &Backbone,
    cfg: &PlannerConfig,
    scheme: Scheme,
    acfg: &AvailabilityConfig,
    cache: &RouteCache,
) -> AvailabilitySurface {
    let suite = scenario_suite(
        &backbone.optical,
        acfg.k_max,
        acfg.exhaustive_limit,
        acfg.samples,
        acfg.seed,
    );
    let demands = demand_scenarios(
        &backbone.ip,
        acfg.demand_scenarios,
        acfg.demand_spread,
        acfg.seed,
    );
    let mut engine = ScenarioEngine::new(
        scheme,
        &backbone.optical,
        &backbone.ip,
        cfg,
        cache,
        acfg.engine.clone(),
    );
    if acfg.exact {
        // Warm mutations pin survivors of the *standing* solution, so
        // the model must hold a solved baseline before it is attached.
        let mut model = PlanModel::build_restorable(scheme, &backbone.optical, &backbone.ip, cfg);
        model
            .solve(&acfg.engine.solve)
            .expect("exact baseline plan is feasible");
        engine.attach_exact(model);
    }
    engine.evaluate(&suite, &demands)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexwan_topo::tbackbone::{t_backbone, TBackboneConfig};

    fn small_backbone() -> Backbone {
        t_backbone(&TBackboneConfig {
            regions: 2,
            nodes_per_region: 3,
            ip_links: 6,
            seed: 35,
            metro_fiber_pairs: 2,
            longhaul_fiber_pairs: 2,
        })
    }

    #[test]
    fn sweep_is_deterministic_and_thread_invariant() {
        let b = small_backbone();
        let cfg = PlannerConfig {
            k_paths: 3,
            ..PlannerConfig::default()
        };
        let acfg = AvailabilityConfig {
            k_max: 2,
            exhaustive_limit: 32,
            samples: 8,
            demand_scenarios: 1,
            ..AvailabilityConfig::default()
        };
        let base = availability_surface(&b, &cfg, Scheme::FlexWan, &acfg, &RouteCache::new());
        for threads in [1usize, 4] {
            let mut a2 = acfg.clone();
            a2.engine.threads = threads;
            let s = availability_surface(&b, &cfg, Scheme::FlexWan, &a2, &RouteCache::new());
            assert_eq!(s.render(), base.render(), "threads={threads}");
        }
    }
}
