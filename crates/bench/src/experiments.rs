//! One function per paper table/figure (the experiment index of
//! DESIGN.md §4). Binaries print these; integration tests assert their
//! shapes against the paper's claims.

use std::collections::HashSet;

use flexwan_core::planning::{max_feasible_scale_cached, plan, plan_cached, PlannerConfig};
use flexwan_core::restore::{
    conduit_cut_scenarios, flexwan_plus_extra_spares, restore_cached, restore_report, Restoration,
    RestoreReport,
};
use flexwan_core::Scheme;
use flexwan_optical::spectrum::PixelWidth;
use flexwan_optical::transponder::{Bvt, FixedGrid100G, Svt, TransponderModel, SVT_TABLE};
use flexwan_physim::testbed::Testbed;
use flexwan_topo::cache::RouteCache;
use flexwan_topo::ksp::shortest_path;
use flexwan_topo::tbackbone::Backbone;
use flexwan_util::pool;

/// Cost outcome of planning one scheme.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemeCost {
    /// The scheme planned.
    pub scheme: Scheme,
    /// Whether the full demand set was provisioned.
    pub feasible: bool,
    /// Transponder pairs deployed.
    pub transponders: usize,
    /// Spectrum usage `Σ λ·Y`, GHz.
    pub spectrum_ghz: f64,
    /// Demand left unmet, Gbps.
    pub unmet_gbps: u64,
}

/// Plans all three schemes at `scale` × the demand set.
///
/// Candidate routes depend only on the optical graph and the IP link
/// endpoints — not on the scheme or the demand scale — so they are
/// enumerated once (first scheme) and reused (remaining schemes) through
/// a per-call [`RouteCache`] instead of re-running Yen per scheme.
pub fn plan_costs(backbone: &Backbone, cfg: &PlannerConfig, scale: u64) -> Vec<SchemeCost> {
    plan_costs_cached(backbone, cfg, scale, &RouteCache::new())
}

/// [`plan_costs`] sharing `cache` with the caller's wider sweep (e.g. the
/// full scale ladder of [`cost_vs_scale`], where every scale reuses the
/// same candidate routes).
pub fn plan_costs_cached(
    backbone: &Backbone,
    cfg: &PlannerConfig,
    scale: u64,
    cache: &RouteCache,
) -> Vec<SchemeCost> {
    let ip = backbone.ip.scaled(scale);
    Scheme::ALL
        .iter()
        .map(|&scheme| {
            let p = plan_cached(scheme, &backbone.optical, &ip, cfg, cache);
            SchemeCost {
                scheme,
                feasible: p.is_feasible(),
                transponders: p.transponder_count(),
                spectrum_ghz: p.spectrum_usage_ghz(),
                unmet_gbps: p.unmet_gbps(),
            }
        })
        .collect()
}

/// Figure 12: cost vs capacity scale for every scheme, `1..=max_scale`.
pub fn cost_vs_scale(
    backbone: &Backbone,
    cfg: &PlannerConfig,
    max_scale: u64,
) -> Vec<(u64, Vec<SchemeCost>)> {
    cost_vs_scale_threads(backbone, cfg, max_scale, 1)
}

/// [`cost_vs_scale`] fanned out over the scale ladder on `threads`
/// workers (0 = auto). Each scale is an independent planning problem;
/// one shared [`RouteCache`] serves all of them, and the deterministic
/// pool keeps the output bit-identical to the serial run at any thread
/// count.
pub fn cost_vs_scale_threads(
    backbone: &Backbone,
    cfg: &PlannerConfig,
    max_scale: u64,
    threads: usize,
) -> Vec<(u64, Vec<SchemeCost>)> {
    let cache = RouteCache::new();
    let scales: Vec<u64> = (1..=max_scale).collect();
    let costs = pool::par_map(&scales, threads, |&s| {
        plan_costs_cached(backbone, cfg, s, &cache)
    });
    scales.into_iter().zip(costs).collect()
}

/// §7 headline numbers.
#[derive(Debug, Clone)]
pub struct Headline {
    /// % transponders FlexWAN saves vs [100G-WAN, RADWAN] at scale 1.
    pub transponder_saving_pct: [f64; 2],
    /// % spectrum FlexWAN saves vs [100G-WAN, RADWAN] at scale 1.
    pub spectrum_saving_pct: [f64; 2],
    /// Max feasible scale per scheme ([100G-WAN, RADWAN, FlexWAN]).
    pub max_scale: [u64; 3],
}

/// Computes the §7 headline: savings at scale 1 and max supported scales.
pub fn headline(backbone: &Backbone, cfg: &PlannerConfig, scale_cap: u64) -> Headline {
    // Every planning run below shares one candidate-route set: routes are
    // scale- and scheme-independent, so the cache misses once per IP link.
    let cache = RouteCache::new();
    let at1 = plan_costs_cached(backbone, cfg, 1, &cache);
    let find = |s: Scheme| {
        at1.iter()
            .find(|c| c.scheme == s)
            .expect("all schemes planned")
    };
    let flex = find(Scheme::FlexWan);
    let pct = |base: f64, ours: f64| 100.0 * (base - ours) / base;
    let fixed = find(Scheme::FixedGrid100G);
    let radwan = find(Scheme::Radwan);
    let cap =
        |s| max_feasible_scale_cached(s, &backbone.optical, &backbone.ip, cfg, scale_cap, &cache);
    Headline {
        transponder_saving_pct: [
            pct(fixed.transponders as f64, flex.transponders as f64),
            pct(radwan.transponders as f64, flex.transponders as f64),
        ],
        spectrum_saving_pct: [
            pct(fixed.spectrum_ghz, flex.spectrum_ghz),
            pct(radwan.spectrum_ghz, flex.spectrum_ghz),
        ],
        max_scale: [
            cap(Scheme::FixedGrid100G),
            cap(Scheme::Radwan),
            cap(Scheme::FlexWan),
        ],
    }
}

/// Figure 2(a): shortest-optical-path length per IP link, km.
pub fn path_lengths(backbone: &Backbone) -> Vec<u32> {
    let none = HashSet::new();
    backbone
        .ip
        .links()
        .iter()
        .filter_map(|l| shortest_path(&backbone.optical, l.src, l.dst, &none))
        .map(|p| p.length_km)
        .collect()
}

/// Figure 13(a): path lengths weighted by demanded capacity —
/// `(length km, weight Gbps)` pairs.
pub fn capacity_weighted_lengths(backbone: &Backbone) -> Vec<(u32, u64)> {
    let none = HashSet::new();
    backbone
        .ip
        .links()
        .iter()
        .filter_map(|l| {
            shortest_path(&backbone.optical, l.src, l.dst, &none)
                .map(|p| (p.length_km, l.demand_gbps))
        })
        .collect()
}

/// One Figure 2(b) sample: (distance km, SVT, BVT, fixed-grid 100G max rates).
pub type RateCurveRow = (u32, Option<u32>, Option<u32>, Option<u32>);

/// Figure 2(b): max data rate per transponder generation vs distance.
pub fn max_rate_curves(distances_km: &[u32]) -> Vec<RateCurveRow> {
    distances_km
        .iter()
        .map(|&d| {
            (
                d,
                Svt.max_rate_at(d),
                Bvt.max_rate_at(d),
                FixedGrid100G.max_rate_at(d),
            )
        })
        .collect()
}

/// One Figure 3 row: cost of provisioning 800 Gbps at one path length.
#[derive(Debug, Clone)]
pub struct ProvisionCost {
    /// Path length, km.
    pub length_km: u32,
    /// (transponder pairs, spectrum GHz) with the SVT; `None` = no format
    /// reaches.
    pub svt: Option<(usize, f64)>,
    /// Same with the BVT.
    pub bvt: Option<(usize, f64)>,
}

/// Figure 3: hardware cost of 800 Gbps vs path length, SVT vs BVT.
pub fn provision_800g(lengths_km: &[u32]) -> Vec<ProvisionCost> {
    use flexwan_core::planning::format_dp::select_formats;
    let cost = |model: &dyn TransponderModel, len: u32| -> Option<(usize, f64)> {
        select_formats(model, 800, len, 1e-3)
            .map(|fs| (fs.len(), fs.iter().map(|f| f.spacing.ghz()).sum()))
    };
    lengths_km
        .iter()
        .map(|&len| ProvisionCost {
            length_km: len,
            svt: cost(&Svt, len),
            bvt: cost(&Bvt, len),
        })
        .collect()
}

/// One Figure 11 / Table 2 row: paper vs simulator-derived reach.
#[derive(Debug, Clone)]
pub struct ReachRow {
    /// Data rate, Gbps.
    pub rate_gbps: u32,
    /// Channel spacing, GHz.
    pub spacing_ghz: f64,
    /// The paper's measured reach, km.
    pub paper_km: u32,
    /// Our simulated testbed's reach, km.
    pub derived_km: u32,
}

/// Figure 11 / Table 2: regenerate the SVT reach table on the simulated
/// testbed and pair it with the paper's measurements.
pub fn svt_reach_table() -> Vec<ReachRow> {
    let tb = Testbed::default();
    SVT_TABLE
        .iter()
        .map(|&(rate, ghz, paper)| ReachRow {
            rate_gbps: rate,
            spacing_ghz: ghz,
            paper_km: paper,
            derived_km: tb.best_reach_km(rate, PixelWidth::from_ghz(ghz).expect("on grid")),
        })
        .collect()
}

/// Figure 14 inputs: per-wavelength reach gaps and spectral efficiencies
/// for one scheme at scale 1.
pub fn gap_and_sse(
    backbone: &Backbone,
    cfg: &PlannerConfig,
    scheme: Scheme,
) -> (Vec<i64>, Vec<f64>) {
    let p = plan(scheme, &backbone.optical, &backbone.ip, cfg);
    (
        p.wavelengths.iter().map(|w| w.reach_gap_km()).collect(),
        p.wavelengths
            .iter()
            .map(|w| w.spectral_efficiency())
            .collect(),
    )
}

/// Runs every conduit-cut scenario against a scheme's plan at `scale` and
/// reports. `plus` enables the FlexWAN+ spare pool (only meaningful for
/// [`Scheme::FlexWan`]).
pub fn restoration_report(
    backbone: &Backbone,
    cfg: &PlannerConfig,
    scheme: Scheme,
    scale: u64,
    plus: bool,
) -> RestoreReport {
    restoration_report_threads(backbone, cfg, scheme, scale, plus, &RouteCache::new(), 1)
}

/// [`restoration_report`] with the scenario sweep fanned out on `threads`
/// workers (0 = auto), sharing `cache` across scenarios and with the
/// caller's wider sweep. Restoration routes are keyed by the scenario's
/// cut set, so a cut fiber can never be served a cached uncut route.
pub fn restoration_report_threads(
    backbone: &Backbone,
    cfg: &PlannerConfig,
    scheme: Scheme,
    scale: u64,
    plus: bool,
    cache: &RouteCache,
    threads: usize,
) -> RestoreReport {
    restore_report(&restoration_results(
        backbone, cfg, scheme, scale, plus, cache, threads,
    ))
}

/// The per-scenario restorations behind [`restoration_report`]:
/// `(scenario probability, restoration)` in [`conduit_cut_scenarios`]
/// order, bit-identical at any `threads` count. Exposed so determinism
/// tests can compare the full vectors, not just the aggregated report.
pub fn restoration_results(
    backbone: &Backbone,
    cfg: &PlannerConfig,
    scheme: Scheme,
    scale: u64,
    plus: bool,
    cache: &RouteCache,
    threads: usize,
) -> Vec<(f64, Restoration)> {
    let ip = backbone.ip.scaled(scale);
    let p = plan_cached(scheme, &backbone.optical, &ip, cfg, cache);
    let extra = if plus {
        flexwan_plus_extra_spares(&backbone.optical, &ip, cfg)
    } else {
        Vec::new()
    };
    let scenarios = conduit_cut_scenarios(&backbone.optical);
    let restored = pool::par_map(&scenarios, threads, |s| {
        restore_cached(&p, &backbone.optical, &ip, s, &extra, cfg, cache)
    });
    scenarios
        .iter()
        .map(|s| s.probability)
        .zip(restored)
        .collect()
}

/// Figure 15(b): mean restoration capability per scheme per scale.
pub fn restoration_vs_scale(
    backbone: &Backbone,
    cfg: &PlannerConfig,
    scales: &[u64],
) -> Vec<(u64, [f64; 3])> {
    restoration_vs_scale_threads(backbone, cfg, scales, 1)
}

/// [`restoration_vs_scale`] with every scenario sweep on `threads`
/// workers (0 = auto) and one [`RouteCache`] shared across all
/// scales × schemes — the planner's uncut routes miss once total, and
/// each cut set's detour routes miss once across the whole figure.
pub fn restoration_vs_scale_threads(
    backbone: &Backbone,
    cfg: &PlannerConfig,
    scales: &[u64],
    threads: usize,
) -> Vec<(u64, [f64; 3])> {
    let cache = RouteCache::new();
    scales
        .iter()
        .map(|&s| {
            let report = |scheme| {
                restoration_report_threads(backbone, cfg, scheme, s, false, &cache, threads)
                    .mean_capability()
            };
            let caps = [
                report(Scheme::FixedGrid100G),
                report(Scheme::Radwan),
                report(Scheme::FlexWan),
            ];
            (s, caps)
        })
        .collect()
}

/// The §4.3 controller-issues experiment: counts of spectrum issues under
/// uncoordinated per-vendor control vs centralized control, on the
/// backbone's FlexWAN demand set.
#[derive(Debug, Clone)]
pub struct IssueCounts {
    /// (conflicts, inconsistencies) with per-vendor controllers.
    pub uncoordinated: (usize, usize),
    /// (conflicts, inconsistencies) with the centralized controller.
    pub centralized: (usize, usize),
    /// Wavelengths in the comparison.
    pub wavelengths: usize,
}

/// Runs the uncoordinated-vs-centralized comparison (Figure 5 /
/// §4.3's "zero spectrum inconsistency and conflict").
pub fn controller_issue_counts(backbone: &Backbone, cfg: &PlannerConfig) -> IssueCounts {
    use flexwan_ctrl::issues::{
        centralized_assignment, find_conflicts, find_inconsistencies, uncoordinated_assignment,
    };
    use flexwan_ctrl::model::Vendor;

    // The demand set: the FlexWAN plan's (path, spacing) pairs, with the
    // provisioning vendor following the source site (round-robin).
    let p = plan(Scheme::FlexWan, &backbone.optical, &backbone.ip, cfg);
    let demands: Vec<_> = p
        .wavelengths
        .iter()
        .map(|w| {
            let vendor = Vendor::ALL[w.path.source().0 as usize % Vendor::ALL.len()];
            (w.path.clone(), w.format.spacing, vendor)
        })
        .collect();
    let site_owner = backbone
        .optical
        .nodes()
        .iter()
        .map(|n| (n.id, Vendor::ALL[n.id.0 as usize % Vendor::ALL.len()]))
        .collect();

    let (ch_u, pb_u) = uncoordinated_assignment(
        &demands,
        &site_owner,
        cfg.grid,
        backbone.optical.num_edges(),
    );
    let (ch_c, pb_c) = centralized_assignment(&demands, cfg.grid, backbone.optical.num_edges());
    IssueCounts {
        uncoordinated: (
            find_conflicts(&ch_u).len(),
            find_inconsistencies(&ch_u, &pb_u).len(),
        ),
        centralized: (
            find_conflicts(&ch_c).len(),
            find_inconsistencies(&ch_c, &pb_c).len(),
        ),
        wavelengths: demands.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instances::{default_config, tbackbone_instance};

    #[test]
    fn fig2b_rows_shape() {
        let rows = max_rate_curves(&[100, 1000, 3000, 5000, 6000]);
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[0], (100, Some(800), Some(300), Some(100)));
        assert_eq!(rows[4], (6000, None, None, None));
    }

    #[test]
    fn fig3_rows_match_motivation() {
        let rows = provision_800g(&[250, 1800]);
        assert_eq!(rows[0].svt.unwrap().0, 1);
        assert_eq!(rows[0].bvt.unwrap().0, 3);
        assert_eq!(rows[1].svt.unwrap().0, 2);
        assert_eq!(rows[1].bvt.unwrap().0, 4);
    }

    #[test]
    fn plan_costs_enumerates_routes_once_across_schemes() {
        let b = tbackbone_instance();
        let cfg = default_config();
        let cache = RouteCache::new();
        let cached = plan_costs_cached(&b, &cfg, 1, &cache);
        // The hoist: Yen runs once per distinct endpoint pair (parallel
        // IP links share a candidate-route set), everything else —
        // including schemes 2–3 wholesale — is a cache hit.
        let pairs: HashSet<_> = b.ip.links().iter().map(|l| (l.src, l.dst)).collect();
        assert_eq!(cache.misses() as usize, pairs.len());
        assert_eq!(
            (cache.hits() + cache.misses()) as usize,
            3 * b.ip.num_links()
        );
        assert_eq!(cached, plan_costs(&b, &cfg, 1));
    }

    #[test]
    fn issue_counts_reproduce_section_4_3() {
        let b = tbackbone_instance();
        let counts = controller_issue_counts(&b, &default_config());
        assert_eq!(counts.centralized, (0, 0), "centralized must be clean");
        let (conf, incons) = counts.uncoordinated;
        assert!(conf > 0, "uncoordinated control must conflict");
        assert!(incons > 0, "uncoordinated control must be inconsistent");
    }
}
