//! Nonlinear interference (GN model) and launch-power optimization.
//!
//! The baseline testbed model is ASE-limited with a fixed implementation
//! penalty. Real coherent systems are also limited by Kerr nonlinearity:
//! raising launch power raises OSNR but generates nonlinear interference
//! (NLI) that grows with the *cube* of the power. The incoherent
//! Gaussian-noise (GN) model captures this with an effective noise
//! `P_NLI = N_spans · η · P³`, which yields the classic results this
//! module implements and tests:
//!
//! * an **optimal launch power** `P* = (P_ASE,total / (2·N·η))^⅓`,
//! * at which `P_NLI = P_ASE / 2` (nonlinear noise is half the linear
//!   noise), and
//! * a "nonlinear cliff": past the optimum SNR falls 2 dB for every
//!   1 dB of excess power (the `1/(N·η·P²)` law).
//!
//! This explains why the paper's testbed (§6) runs at a fixed per-channel
//! launch power rather than cranking amplifiers up, and why our
//! linear-model calibration carries an aggregate penalty constant.

use crate::link::LinkDesign;
use crate::noise::{amplifier_ase_mw, DEFAULT_CARRIER_THZ};
use crate::units::{dbm_to_mw, mw_to_dbm, ratio_to_db};

/// GN-model NLI efficiency `η` (mW⁻²): `P_NLI = η·P³` per span.
///
/// For standard single-mode fiber and ~50–100 GBd channels, η is of order
/// 1e-3 mW⁻² per span; the exact value depends on dispersion, nonlinear
/// coefficient and channel load, all folded into this one constant (the
/// same modeling altitude as the rest of `flexwan-physim`).
pub const DEFAULT_ETA_PER_MW2: f64 = 1.4e-3;

/// Effective linear SNR of a span chain with both ASE and NLI noise:
/// `SNR = P / (P_ASE + N·η·P³)` (incoherent NLI accumulation).
pub fn snr_with_nli(launch_mw: f64, total_ase_mw: f64, eta: f64, n_spans: usize) -> f64 {
    assert!(launch_mw > 0.0 && total_ase_mw >= 0.0 && eta >= 0.0);
    let p_nli = n_spans as f64 * eta * launch_mw.powi(3);
    launch_mw / (total_ase_mw + p_nli)
}

/// The launch power maximizing [`snr_with_nli`], mW:
/// `P* = (P_ASE,total / (2·N·η))^⅓`.
pub fn optimal_launch_mw(total_ase_mw: f64, eta: f64, n_spans: usize) -> f64 {
    assert!(total_ase_mw > 0.0 && eta > 0.0 && n_spans > 0);
    (total_ase_mw / (2.0 * n_spans as f64 * eta)).cbrt()
}

/// Launch-power analysis of an engineered link at the OSNR reference
/// bandwidth: the optimum and the SNR it achieves.
#[derive(Debug, Clone, Copy)]
pub struct PowerOptimum {
    /// Optimal per-channel launch power, dBm.
    pub launch_dbm: f64,
    /// Effective linear SNR (reference bandwidth) at the optimum.
    pub snr_linear: f64,
}

/// Computes the optimal launch power for `link` under the GN model.
pub fn optimize_launch(link: &LinkDesign, eta: f64) -> Option<PowerOptimum> {
    let n = link.num_amplifiers();
    if n == 0 {
        return None; // back-to-back: more power is always better
    }
    let total_ase: f64 = link
        .spans()
        .iter()
        .map(|s| {
            amplifier_ase_mw(
                s.amplifier.gain_db,
                s.amplifier.noise_figure_db,
                DEFAULT_CARRIER_THZ,
            )
        })
        .sum();
    let p = optimal_launch_mw(total_ase, eta, n);
    Some(PowerOptimum {
        launch_dbm: mw_to_dbm(p),
        snr_linear: snr_with_nli(p, total_ase, eta, n),
    })
}

/// SNR (dB) of `link` at an explicit launch power under the GN model —
/// the curve the `fig_power_dome` sweep prints.
pub fn snr_db_at_launch(link: &LinkDesign, launch_dbm: f64, eta: f64) -> f64 {
    let total_ase: f64 = link
        .spans()
        .iter()
        .map(|s| {
            amplifier_ase_mw(
                s.amplifier.gain_db,
                s.amplifier.noise_figure_db,
                DEFAULT_CARRIER_THZ,
            )
        })
        .sum();
    ratio_to_db(snr_with_nli(
        dbm_to_mw(launch_dbm),
        total_ase,
        eta,
        link.num_amplifiers(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkDesign;

    #[test]
    fn optimum_balances_nli_at_half_ase() {
        let (ase, eta, n) = (1e-5, DEFAULT_ETA_PER_MW2, 10);
        let p = optimal_launch_mw(ase, eta, n);
        let p_nli = n as f64 * eta * p.powi(3);
        assert!(
            (p_nli - ase / 2.0).abs() / ase < 1e-9,
            "NLI must equal ASE/2 at P*"
        );
    }

    #[test]
    fn optimum_is_a_maximum() {
        let (ase, eta, n) = (2e-5, DEFAULT_ETA_PER_MW2, 8);
        let p = optimal_launch_mw(ase, eta, n);
        let best = snr_with_nli(p, ase, eta, n);
        for factor in [0.5, 0.8, 1.25, 2.0] {
            assert!(
                snr_with_nli(p * factor, ase, eta, n) < best,
                "P*×{factor} should be worse"
            );
        }
    }

    #[test]
    fn nonlinear_cliff_slope() {
        // Far above optimum, SNR ≈ 1/(ηNP²): +3 dB of power costs ~6 dB
        // of SNR (−2 dB per dB).
        let (ase, eta, n) = (1e-5, DEFAULT_ETA_PER_MW2, 10);
        let p = optimal_launch_mw(ase, eta, n) * 10.0; // deep nonlinear
        let s1 = ratio_to_db(snr_with_nli(p, ase, eta, n));
        let s2 = ratio_to_db(snr_with_nli(p * 2.0, ase, eta, n)); // +3 dB
        assert!((s1 - s2 - 6.02).abs() < 0.2, "slope {:.2} dB", s1 - s2);
    }

    #[test]
    fn linear_regime_gains_db_for_db() {
        let (ase, eta, n) = (1e-5, DEFAULT_ETA_PER_MW2, 10);
        let p = optimal_launch_mw(ase, eta, n) / 30.0; // deep linear
        let s1 = ratio_to_db(snr_with_nli(p, ase, eta, n));
        let s2 = ratio_to_db(snr_with_nli(p * 2.0, ase, eta, n));
        assert!((s2 - s1 - 3.0).abs() < 0.2, "slope {:.2} dB", s2 - s1);
    }

    #[test]
    fn link_level_optimum_in_plausible_range() {
        // 800 km link: production systems run around −2…+3 dBm per channel.
        let link = LinkDesign::for_length(800.0);
        let opt = optimize_launch(&link, DEFAULT_ETA_PER_MW2).unwrap();
        assert!(
            (-4.0..=4.0).contains(&opt.launch_dbm),
            "optimal launch {:.1} dBm out of range",
            opt.launch_dbm
        );
        // The optimum beats ±3 dB on the same link.
        let lo = snr_db_at_launch(&link, opt.launch_dbm - 3.0, DEFAULT_ETA_PER_MW2);
        let hi = snr_db_at_launch(&link, opt.launch_dbm + 3.0, DEFAULT_ETA_PER_MW2);
        let best = ratio_to_db(opt.snr_linear);
        assert!(best > lo && best > hi);
    }

    #[test]
    fn optimal_power_is_per_span_and_snr_scales_down() {
        // Classic GN-model result: ASE and NLI both accumulate linearly
        // in span count, so the *optimal power* depends only on the
        // per-span balance — identical spans ⇒ identical P* — while the
        // achievable SNR still degrades with distance.
        let short = optimize_launch(&LinkDesign::for_length(160.0), DEFAULT_ETA_PER_MW2).unwrap();
        let long = optimize_launch(&LinkDesign::for_length(3200.0), DEFAULT_ETA_PER_MW2).unwrap();
        assert!(
            (long.launch_dbm - short.launch_dbm).abs() < 0.3,
            "P* should not depend on span count ({:.2} vs {:.2} dBm)",
            long.launch_dbm,
            short.launch_dbm
        );
        assert!(long.snr_linear < short.snr_linear);
    }

    #[test]
    fn back_to_back_has_no_finite_optimum() {
        assert!(optimize_launch(&LinkDesign::for_length(0.0), DEFAULT_ETA_PER_MW2).is_none());
    }
}
