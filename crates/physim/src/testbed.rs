//! The production-level testbed of §6, as a simulator.
//!
//! The paper's procedure: "we control the format of SVT and gradually
//! increase the fiber length. If the post-FEC BER increases from 0 to a
//! positive number, we obtain the maximum transmission distance at the
//! current format." [`Testbed::max_reach_km`] reproduces exactly that
//! sweep over the simulated link (spans + EDFAs + ASE + BER), and
//! [`derive_svt_table`] regenerates the full Table 2 capability matrix
//! from physics rather than from the paper's constants.
//!
//! Calibration: a single implementation-penalty constant (default 9.5 dB,
//! covering fiber nonlinearity, transceiver imperfections and operator
//! margin, none of which the linear ASE model captures) anchors the
//! simulated reaches to the measured Table 2 — the per-entry agreement is
//! recorded in EXPERIMENTS.md.

use flexwan_optical::format::FecOverhead;
use flexwan_optical::spectrum::PixelWidth;

use crate::ber::{post_fec_ber, pre_fec_ber};
use crate::link::LinkDesign;
use crate::noise::{osnr_linear, osnr_to_snr_linear, DEFAULT_CARRIER_THZ};
use crate::units::db_to_ratio;

/// Testbed configuration (§6 setup).
#[derive(Debug, Clone)]
pub struct Testbed {
    /// Per-channel launch power, dBm.
    pub launch_power_dbm: f64,
    /// Maximum amplifier span, km.
    pub span_km: f64,
    /// Aggregate implementation penalty subtracted from the linear-model
    /// SNR, dB.
    pub penalty_db: f64,
    /// Extra penalty per GHz of spacing below 75 GHz, dB/GHz: cascaded WSS
    /// filter narrowing bites channels whose guard band is proportionally
    /// small (why Table 2's 50 GHz column is shorter-reached than 75 GHz at
    /// equal rate).
    pub narrow_filter_db_per_ghz: f64,
    /// Optical carrier frequency, THz.
    pub carrier_thz: f64,
}

impl Default for Testbed {
    fn default() -> Self {
        Testbed {
            launch_power_dbm: 0.0,
            span_km: 80.0,
            penalty_db: 9.5,
            narrow_filter_db_per_ghz: 0.12,
            carrier_thz: DEFAULT_CARRIER_THZ,
        }
    }
}

/// A transponder line configuration under test: the adjustable component
/// settings of the SVT (§4.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LineConfig {
    /// Net data rate, Gbps.
    pub data_rate_gbps: u32,
    /// Channel spacing.
    pub spacing: PixelWidth,
    /// FEC overhead selected in the FEC module.
    pub fec: FecOverhead,
}

impl LineConfig {
    /// Symbol rate implied by the spacing (one 12.5 GHz pixel of guard
    /// band, matching
    /// [`flexwan_optical::format::TransponderFormat::derive`]).
    pub fn baud_gbd(&self) -> f64 {
        self.spacing.ghz() - 12.5
    }

    /// Information bits per symbol per polarization.
    pub fn bits_per_symbol(&self) -> f64 {
        f64::from(self.data_rate_gbps) * self.fec.rate_multiplier() / (2.0 * self.baud_gbd())
    }
}

impl Testbed {
    /// Effective linear SNR of `cfg` after `length_km` of line:
    /// ASE-limited SNR minus the implementation penalty and the
    /// narrow-channel filtering penalty.
    pub fn snr_linear(&self, cfg: &LineConfig, length_km: f64) -> f64 {
        let link = LinkDesign::with_span(length_km, self.span_km);
        let osnr = osnr_linear(&link, self.launch_power_dbm, self.carrier_thz);
        let filter_db = self.narrow_filter_db_per_ghz * (75.0 - cfg.spacing.ghz()).max(0.0);
        osnr_to_snr_linear(osnr, cfg.baud_gbd()) / db_to_ratio(self.penalty_db + filter_db)
    }

    /// The §6 measurement: post-FEC BER of `cfg` at `length_km`. A
    /// configuration demanding a denser constellation than the DSP can
    /// generate ([`crate::ber::DSP_MAX_BITS_PER_SYMBOL`]) never decodes,
    /// at any distance.
    pub fn post_fec_ber(&self, cfg: &LineConfig, length_km: f64) -> f64 {
        if cfg.bits_per_symbol() > crate::ber::DSP_MAX_BITS_PER_SYMBOL {
            return 0.5;
        }
        let snr = self.snr_linear(cfg, length_km);
        post_fec_ber(pre_fec_ber(cfg.bits_per_symbol(), snr), cfg.fec)
    }

    /// Maximum error-free distance of `cfg`, km (0 when even back-to-back
    /// transmission fails). Resolution 10 km, found by bisection — the
    /// post-FEC BER is monotone in distance, so this equals the paper's
    /// incremental sweep.
    pub fn max_reach_km(&self, cfg: &LineConfig) -> u32 {
        const STEP: f64 = 10.0;
        const MAX_KM: f64 = 20_000.0;
        if self.post_fec_ber(cfg, STEP) > 0.0 {
            return 0;
        }
        if self.post_fec_ber(cfg, MAX_KM) == 0.0 {
            return MAX_KM as u32;
        }
        let (mut lo, mut hi) = (STEP, MAX_KM); // lo passes, hi fails
        while hi - lo > STEP {
            let mid = 0.5 * (lo + hi);
            if self.post_fec_ber(cfg, mid) == 0.0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        ((lo / STEP).floor() * STEP) as u32
    }

    /// Best reach for a (rate, spacing) operating point across the SVT's
    /// selectable FEC overheads — the transponder control unit picks the
    /// FEC that maximizes reach.
    pub fn best_reach_km(&self, data_rate_gbps: u32, spacing: PixelWidth) -> u32 {
        [FecOverhead::LOW, FecOverhead::HIGH]
            .into_iter()
            .map(|fec| {
                self.max_reach_km(&LineConfig {
                    data_rate_gbps,
                    spacing,
                    fec,
                })
            })
            .max()
            .unwrap_or(0)
    }
}

/// One derived capability entry (a Table 2 cell).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DerivedEntry {
    /// Net data rate, Gbps.
    pub data_rate_gbps: u32,
    /// Channel spacing, GHz.
    pub spacing_ghz: f64,
    /// Measured maximum reach, km.
    pub reach_km: u32,
}

/// Regenerates the SVT capability matrix (Table 2 / Figure 11) by sweeping
/// rates 100–800 Gbps across spacings 50–150 GHz on the simulated testbed.
/// Entries with derived reach < 100 km are omitted (the paper's "/" = not
/// recommended).
pub fn derive_svt_table(testbed: &Testbed) -> Vec<DerivedEntry> {
    let mut out = Vec::new();
    for px in 4..=12u16 {
        let spacing = PixelWidth::new(px);
        for rate in (100..=800).step_by(100) {
            let reach = testbed.best_reach_km(rate as u32, spacing);
            if reach >= 100 {
                out.push(DerivedEntry {
                    data_rate_gbps: rate as u32,
                    spacing_ghz: spacing.ghz(),
                    reach_km: reach,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexwan_optical::transponder::SVT_TABLE;

    fn px(ghz: f64) -> PixelWidth {
        PixelWidth::from_ghz(ghz).unwrap()
    }

    #[test]
    fn ber_transitions_once_with_distance() {
        // §6: post-FEC BER goes from 0 to positive exactly once as length
        // grows.
        let tb = Testbed::default();
        let cfg = LineConfig {
            data_rate_gbps: 300,
            spacing: px(75.0),
            fec: FecOverhead::HIGH,
        };
        let reach = tb.max_reach_km(&cfg);
        assert!(reach > 0);
        assert_eq!(tb.post_fec_ber(&cfg, f64::from(reach)), 0.0);
        assert!(tb.post_fec_ber(&cfg, f64::from(reach) + 200.0) > 0.0);
    }

    #[test]
    fn anchor_point_100g_75ghz() {
        // Calibration anchor: 100 G @ 75 GHz measures 5000 km in Table 2;
        // the simulator must land in the same regime.
        let tb = Testbed::default();
        let reach = tb.best_reach_km(100, px(75.0));
        assert!(
            (3500..=7500).contains(&reach),
            "100G@75GHz derived reach {reach} km vs paper 5000 km"
        );
    }

    #[test]
    fn derived_table_shape_matches_table2() {
        // For every Table 2 entry the derived reach must be within a
        // factor of [0.4, 2.6] — the linear-ASE + constant-penalty model
        // reproduces the shape, not exact production measurements.
        let tb = Testbed::default();
        for &(rate, ghz, paper_reach) in SVT_TABLE {
            let derived = tb.best_reach_km(rate, px(ghz));
            let ratio = f64::from(derived) / f64::from(paper_reach);
            assert!(
                (0.4..=2.6).contains(&ratio),
                "{rate}G@{ghz}GHz: derived {derived} km vs paper {paper_reach} km (ratio {ratio:.2})"
            );
        }
    }

    #[test]
    fn derived_reach_monotone_in_spacing() {
        // Fig 11: at fixed rate, wider spacing ⇒ longer (or equal) reach.
        let tb = Testbed::default();
        for rate in [300u32, 400, 500, 800] {
            let mut prev = 0;
            for pxw in 4..=12u16 {
                let r = tb.best_reach_km(rate, PixelWidth::new(pxw));
                assert!(
                    r >= prev,
                    "{rate}G: reach fell from {prev} to {r} at {pxw}px"
                );
                prev = r;
            }
        }
    }

    #[test]
    fn derived_reach_monotone_in_rate() {
        // Fig 11: at fixed spacing, higher rate ⇒ shorter (or equal) reach.
        let tb = Testbed::default();
        for pxw in [6u16, 8, 10, 12] {
            let mut prev = u32::MAX;
            for rate in (100..=800).step_by(100) {
                let r = tb.best_reach_km(rate as u32, PixelWidth::new(pxw));
                assert!(
                    r <= prev,
                    "{pxw}px: reach rose from {prev} to {r} at {rate}G"
                );
                prev = r;
            }
        }
    }

    #[test]
    fn table_omits_unreachable_cells() {
        // Table 2 marks 800 G at ≤100 GHz as "/" (not recommended): the
        // derived table must also exclude them.
        let tb = Testbed::default();
        let table = derive_svt_table(&tb);
        assert!(!table
            .iter()
            .any(|e| e.data_rate_gbps == 800 && e.spacing_ghz <= 87.5));
        // And must include the workhorse entries.
        assert!(table
            .iter()
            .any(|e| e.data_rate_gbps == 100 && e.spacing_ghz == 75.0));
        assert!(table
            .iter()
            .any(|e| e.data_rate_gbps == 800 && e.spacing_ghz == 150.0));
    }

    #[test]
    fn fec_choice_matters() {
        // The high-overhead FEC must strictly extend reach for long-haul
        // points (that is its purpose, §4.2).
        let tb = Testbed::default();
        let low = tb.max_reach_km(&LineConfig {
            data_rate_gbps: 100,
            spacing: px(75.0),
            fec: FecOverhead::LOW,
        });
        let high = tb.max_reach_km(&LineConfig {
            data_rate_gbps: 100,
            spacing: px(75.0),
            fec: FecOverhead::HIGH,
        });
        assert!(high > low, "27% FEC reach {high} ≤ 15% FEC reach {low}");
    }

    #[test]
    fn higher_launch_power_extends_reach() {
        let base = Testbed::default();
        let hot = Testbed {
            launch_power_dbm: 3.0,
            ..Testbed::default()
        };
        let cfg = LineConfig {
            data_rate_gbps: 400,
            spacing: px(100.0),
            fec: FecOverhead::HIGH,
        };
        assert!(hot.max_reach_km(&cfg) > base.max_reach_km(&cfg));
    }
}
