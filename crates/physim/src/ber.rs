//! Bit-error-rate model: pre-FEC BER per modulation, FEC thresholds, and
//! the post-FEC decision the testbed measures (§6).
//!
//! "The post-FEC BER indicates whether the signal can be correctly decoded
//! … positive values show that the SNR is too low to merit error-free
//! decoding" — we reproduce exactly that semantics: the FEC decoder output
//! is error-free (post-FEC BER = 0) iff the pre-FEC BER is at or below the
//! code's correction threshold.

use flexwan_optical::format::FecOverhead;

use crate::units::q_function;

/// Densest constellation the SVT's DSP can realize, in information bits
/// per symbol per polarization (PCS on a 64QAM template). §3.1: "extremely
/// high-order modulation formats necessitate precise signal generation and
/// are more susceptible to optical impairments" — the hardware caps out
/// regardless of SNR, which is why 800 Gbps is impossible at 75 GHz even
/// over a back-to-back link (Table 2's "/" entries at narrow spacings).
pub const DSP_MAX_BITS_PER_SYMBOL: f64 = 6.0;

/// Pre-FEC BER correction threshold of a soft-decision FEC with the given
/// overhead: the 15 % code corrects up to ~1.25e-2, the 27 % code up to
/// ~4e-2 (standard SD-FEC figures; more redundancy ⇒ more correctable
/// errors ⇒ longer reach, as §4.2 describes).
pub fn fec_threshold(fec: FecOverhead) -> f64 {
    match fec.percent() {
        p if p >= 25 => 4.0e-2,
        p if p >= 12 => 1.25e-2,
        _ => 3.8e-3, // hard-decision-class codes (not used by the SVT)
    }
}

/// Pre-FEC bit error rate of a coherent channel carrying
/// `bits_per_symbol` (per polarization) at linear SNR `snr`.
///
/// For ≤1.5 bits/symbol the BPSK expression `Q(√(2·SNR))` applies; above
/// that, the standard square-QAM union-bound approximation with effective
/// constellation size `M = 2^bits` (fractional `M` models PCS-shaped
/// constellations, whose performance interpolates between the square
/// QAMs). Clamped to the physical range `[0, 0.5]`.
pub fn pre_fec_ber(bits_per_symbol: f64, snr: f64) -> f64 {
    assert!(bits_per_symbol > 0.0 && snr >= 0.0);
    let ber = if bits_per_symbol <= 1.5 {
        q_function((2.0 * snr).sqrt())
    } else {
        let m = 2f64.powf(bits_per_symbol);
        let coef = (4.0 / bits_per_symbol) * (1.0 - 1.0 / m.sqrt());
        coef * q_function((3.0 * snr / (m - 1.0)).sqrt())
    };
    ber.clamp(0.0, 0.5)
}

/// Post-FEC BER: zero (error-free) when the pre-FEC BER is within the
/// code's threshold, otherwise the uncorrected error rate passes through.
pub fn post_fec_ber(pre_fec: f64, fec: FecOverhead) -> f64 {
    if pre_fec <= fec_threshold(fec) {
        0.0
    } else {
        pre_fec
    }
}

/// Minimum linear SNR at which `bits_per_symbol` decodes error-free under
/// `fec` — found by bisection ([`pre_fec_ber`] is decreasing in SNR).
pub fn required_snr_linear(bits_per_symbol: f64, fec: FecOverhead) -> f64 {
    let threshold = fec_threshold(fec);
    let (mut lo, mut hi) = (0.0f64, 1e9f64);
    debug_assert!(pre_fec_ber(bits_per_symbol, hi) <= threshold);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if pre_fec_ber(bits_per_symbol, mid) > threshold {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    hi
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::ratio_to_db;

    #[test]
    fn ber_decreases_with_snr() {
        for bits in [1.0, 2.0, 3.5, 5.2] {
            let mut prev = 0.6;
            for snr_db in 0..30 {
                let snr = 10f64.powf(snr_db as f64 / 10.0);
                let b = pre_fec_ber(bits, snr);
                assert!(b <= prev + 1e-15, "bits={bits} snr_db={snr_db}");
                prev = b;
            }
        }
    }

    #[test]
    fn ber_increases_with_order_at_fixed_snr() {
        let snr = 10f64.powf(1.2); // ~12 dB
        let b2 = pre_fec_ber(2.0, snr);
        let b4 = pre_fec_ber(4.0, snr);
        let b6 = pre_fec_ber(6.0, snr);
        assert!(b2 < b4 && b4 < b6);
    }

    #[test]
    fn bpsk_known_point() {
        // BPSK at 9.6 dB SNR → BER ≈ 1e-5 (classic figure: Q(√(2·9.12))).
        let snr = 10f64.powf(0.96);
        let b = pre_fec_ber(1.0, snr);
        assert!((1e-6..1e-4).contains(&b), "ber={b}");
    }

    #[test]
    fn post_fec_thresholding() {
        assert_eq!(post_fec_ber(1.0e-2, FecOverhead::LOW), 0.0);
        assert!(post_fec_ber(2.0e-2, FecOverhead::LOW) > 0.0);
        assert_eq!(post_fec_ber(2.0e-2, FecOverhead::HIGH), 0.0);
        assert!(post_fec_ber(5.0e-2, FecOverhead::HIGH) > 0.0);
    }

    #[test]
    fn high_fec_needs_less_snr() {
        for bits in [1.0, 2.0, 4.0] {
            let lo = required_snr_linear(bits, FecOverhead::HIGH);
            let hi = required_snr_linear(bits, FecOverhead::LOW);
            assert!(
                lo < hi,
                "bits={bits}: 27% FEC should need less SNR ({} vs {})",
                ratio_to_db(lo),
                ratio_to_db(hi)
            );
        }
    }

    #[test]
    fn required_snr_is_tight() {
        let bits = 3.5;
        let snr = required_snr_linear(bits, FecOverhead::LOW);
        assert_eq!(
            post_fec_ber(pre_fec_ber(bits, snr * 1.001), FecOverhead::LOW),
            0.0
        );
        assert!(post_fec_ber(pre_fec_ber(bits, snr * 0.97), FecOverhead::LOW) > 0.0);
    }

    #[test]
    fn qam_requires_exponentially_more_snr() {
        // Doubling bits/symbol roughly squares the required linear SNR —
        // the Shannon-driven effect behind the SVT design (§3.1).
        let s2 = required_snr_linear(2.0, FecOverhead::LOW);
        let s4 = required_snr_linear(4.0, FecOverhead::LOW);
        let s6 = required_snr_linear(6.0, FecOverhead::LOW);
        assert!(s4 / s2 > 3.0);
        assert!(s6 / s4 > 3.0);
    }
}
