//! Link engineering: fiber spans and amplifier placement.
//!
//! §6: "We introduce an amplifier for each 50~100 km fiber which is
//! consistent with the production network." A [`LinkDesign`] places one
//! EDFA per span, each exactly compensating its span's loss, so the signal
//! launch power is restored at every amplifier while ASE noise accumulates.

use flexwan_optical::Amplifier;

/// Standard single-mode fiber attenuation at 1550 nm, dB/km.
pub const ATTENUATION_DB_PER_KM: f64 = 0.2;

/// Default span length between amplifiers, km (within the paper's
/// 50–100 km practice).
pub const DEFAULT_SPAN_KM: f64 = 80.0;

/// One fiber span terminated by an amplifier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Span {
    /// Span length, km.
    pub length_km: f64,
    /// The EDFA at the span's end.
    pub amplifier: Amplifier,
}

impl Span {
    /// Fiber loss over the span, dB.
    pub fn loss_db(&self) -> f64 {
        self.length_km * ATTENUATION_DB_PER_KM
    }
}

/// An engineered line: a sequence of spans covering a total length.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkDesign {
    spans: Vec<Span>,
}

impl LinkDesign {
    /// Engineers a link of `length_km` with spans of at most
    /// [`DEFAULT_SPAN_KM`], splitting the distance evenly (production
    /// practice: equalized spans). Zero-length links have no spans.
    pub fn for_length(length_km: f64) -> Self {
        Self::with_span(length_km, DEFAULT_SPAN_KM)
    }

    /// Engineers a link with a custom maximum span length.
    pub fn with_span(length_km: f64, max_span_km: f64) -> Self {
        assert!(length_km >= 0.0 && max_span_km > 0.0);
        if length_km == 0.0 {
            return LinkDesign { spans: Vec::new() };
        }
        let n = (length_km / max_span_km).ceil() as usize;
        let each = length_km / n as f64;
        let spans = (0..n)
            .map(|_| {
                let loss = each * ATTENUATION_DB_PER_KM;
                Span {
                    length_km: each,
                    amplifier: Amplifier::edfa(loss),
                }
            })
            .collect();
        LinkDesign { spans }
    }

    /// The spans.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Number of amplifiers (= spans).
    pub fn num_amplifiers(&self) -> usize {
        self.spans.len()
    }

    /// Total length, km.
    pub fn length_km(&self) -> f64 {
        self.spans.iter().map(|s| s.length_km).sum()
    }

    /// Total fiber loss, dB (fully compensated by the amplifiers).
    pub fn total_loss_db(&self) -> f64 {
        self.spans.iter().map(|s| s.loss_db()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_count_matches_practice() {
        let l = LinkDesign::for_length(600.0);
        // 600 km / 80 km → 8 spans of 75 km.
        assert_eq!(l.num_amplifiers(), 8);
        assert!((l.spans()[0].length_km - 75.0).abs() < 1e-9);
        assert!((l.length_km() - 600.0).abs() < 1e-9);
    }

    #[test]
    fn spans_within_production_range() {
        for km in [120.0, 450.0, 1100.0, 5000.0] {
            let l = LinkDesign::for_length(km);
            for s in l.spans() {
                assert!(s.length_km <= 80.0 + 1e-9, "span {} too long", s.length_km);
                assert!(s.length_km > 0.0);
            }
        }
    }

    #[test]
    fn gain_compensates_loss() {
        let l = LinkDesign::for_length(320.0);
        for s in l.spans() {
            assert!((s.amplifier.gain_db - s.loss_db()).abs() < 1e-9);
        }
        assert!((l.total_loss_db() - 320.0 * 0.2).abs() < 1e-9);
    }

    #[test]
    fn zero_length_link() {
        let l = LinkDesign::for_length(0.0);
        assert_eq!(l.num_amplifiers(), 0);
        assert_eq!(l.total_loss_db(), 0.0);
    }

    #[test]
    fn short_link_single_span() {
        let l = LinkDesign::for_length(30.0);
        assert_eq!(l.num_amplifiers(), 1);
        assert!((l.spans()[0].length_km - 30.0).abs() < 1e-9);
    }
}
