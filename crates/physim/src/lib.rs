//! Physical-layer testbed simulator for the FlexWAN reproduction (§6).
//!
//! Stands in for the paper's production-level vendor testbed: engineered
//! links of 50–100 km amplified spans ([`link`]), ASE-noise accumulation
//! and OSNR ([`noise`]), modulation/FEC bit-error-rate models ([`ber`]),
//! the GN-model nonlinear-interference layer with launch-power
//! optimization ([`nonlinear`]), and the reach-sweep measurement harness
//! ([`testbed`]) that regenerates the SVT capability matrix (Table 2 /
//! Figure 11) from physics.
//!
//! The model is linear (ASE-limited) with a single calibrated
//! implementation-penalty constant standing in for nonlinearity and
//! transceiver imperfections; DESIGN.md §1 records the substitution and
//! EXPERIMENTS.md the per-entry agreement with the paper's Table 2.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ber;
pub mod link;
pub mod noise;
pub mod nonlinear;
pub mod observe;
pub mod testbed;
pub mod units;

pub use ber::{fec_threshold, post_fec_ber, pre_fec_ber, required_snr_linear};
pub use link::{LinkDesign, Span, ATTENUATION_DB_PER_KM, DEFAULT_SPAN_KM};
pub use noise::{osnr_db, osnr_linear, osnr_to_snr_linear, DEFAULT_CARRIER_THZ};
pub use nonlinear::{optimize_launch, snr_with_nli, PowerOptimum, DEFAULT_ETA_PER_MW2};
pub use observe::BerEvaluator;
pub use testbed::{derive_svt_table, DerivedEntry, LineConfig, Testbed};
