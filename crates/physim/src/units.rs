//! Unit conversions and special functions for the physical-layer model.

/// Converts a linear power ratio to dB.
pub fn ratio_to_db(linear: f64) -> f64 {
    10.0 * linear.log10()
}

/// Converts dB to a linear power ratio.
pub fn db_to_ratio(db: f64) -> f64 {
    10f64.powf(db / 10.0)
}

/// Converts absolute power in dBm to milliwatts.
pub fn dbm_to_mw(dbm: f64) -> f64 {
    10f64.powf(dbm / 10.0)
}

/// Converts milliwatts to dBm.
pub fn mw_to_dbm(mw: f64) -> f64 {
    10.0 * mw.log10()
}

/// Complementary error function, Abramowitz & Stegun 7.1.26 rational
/// approximation (|error| ≤ 1.5e-7 — ample for BER work).
pub fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        return 2.0 - erfc(-x);
    }
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    poly * (-x * x).exp()
}

/// Gaussian tail probability `Q(x) = P(N(0,1) > x)`.
pub fn q_function(x: f64) -> f64 {
    0.5 * erfc(x / std::f64::consts::SQRT_2)
}

/// Inverse of [`q_function`] by bisection on `[0, 40]`; accepts
/// `p ∈ (0, 0.5]`.
pub fn q_inverse(p: f64) -> f64 {
    assert!(
        p > 0.0 && p <= 0.5,
        "Q⁻¹ defined here for p ∈ (0, 0.5], got {p}"
    );
    let (mut lo, mut hi) = (0.0f64, 40.0f64);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if q_function(mid) > p {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn db_round_trips() {
        for v in [0.001, 0.5, 1.0, 3.16, 1000.0] {
            assert!((db_to_ratio(ratio_to_db(v)) - v).abs() / v < 1e-12);
        }
        assert!((dbm_to_mw(0.0) - 1.0).abs() < 1e-12);
        assert!((mw_to_dbm(100.0) - 20.0).abs() < 1e-12);
    }

    #[test]
    fn q_function_known_values() {
        assert!((q_function(0.0) - 0.5).abs() < 1e-7);
        // Q(1.0) ≈ 0.15866, Q(2.0) ≈ 0.02275, Q(3.0) ≈ 0.00135.
        assert!((q_function(1.0) - 0.158655).abs() < 1e-4);
        assert!((q_function(2.0) - 0.022750).abs() < 1e-4);
        assert!((q_function(3.0) - 0.001350).abs() < 1e-4);
    }

    #[test]
    fn q_inverse_round_trips() {
        for p in [0.4, 0.1, 1e-2, 1e-3, 1e-6] {
            let x = q_inverse(p);
            assert!((q_function(x) - p).abs() / p < 1e-3, "p={p}");
        }
    }

    #[test]
    fn erfc_symmetry() {
        for x in [0.1, 0.5, 1.7] {
            assert!((erfc(x) + erfc(-x) - 2.0).abs() < 1e-6);
        }
    }
}
