//! Amplified-spontaneous-emission noise accumulation and OSNR.
//!
//! Every EDFA adds ASE noise `P_ase = h·ν·NF·G·B_ref` (referred to its
//! output, in the reference bandwidth). With each span's loss exactly
//! compensated by its amplifier, noise contributions reach the link end
//! with net unit gain and simply add, while the signal stays at launch
//! power — the textbook multi-span OSNR model that underlies the paper's
//! "longer distance ⇒ lower SNR ⇒ lower data rate" relation (§2, §6).

use crate::link::LinkDesign;
use crate::units::{db_to_ratio, dbm_to_mw, ratio_to_db};

/// Planck constant, J·s.
const PLANCK_J_S: f64 = 6.626_070_15e-34;

/// Reference bandwidth for OSNR, Hz (0.1 nm at 1550 nm ≈ 12.5 GHz).
pub const OSNR_REF_BANDWIDTH_HZ: f64 = 12.5e9;

/// Default optical carrier frequency, THz (C-band center).
pub const DEFAULT_CARRIER_THZ: f64 = 193.4;

/// ASE noise power of one amplifier in the reference bandwidth, mW.
pub fn amplifier_ase_mw(gain_db: f64, noise_figure_db: f64, carrier_thz: f64) -> f64 {
    let g = db_to_ratio(gain_db);
    let nf = db_to_ratio(noise_figure_db);
    // h·ν·NF·G·B, J/s = W; ×1e3 → mW.
    PLANCK_J_S * carrier_thz * 1e12 * nf * g * OSNR_REF_BANDWIDTH_HZ * 1e3
}

/// OSNR (linear, in the reference bandwidth) at the end of `link` for a
/// channel launched at `launch_power_dbm`.
pub fn osnr_linear(link: &LinkDesign, launch_power_dbm: f64, carrier_thz: f64) -> f64 {
    let p_sig = dbm_to_mw(launch_power_dbm);
    let p_ase: f64 = link
        .spans()
        .iter()
        .map(|s| {
            amplifier_ase_mw(
                s.amplifier.gain_db,
                s.amplifier.noise_figure_db,
                carrier_thz,
            )
        })
        .sum();
    if p_ase == 0.0 {
        f64::INFINITY // back-to-back: no amplified spans, no ASE
    } else {
        p_sig / p_ase
    }
}

/// OSNR in dB; see [`osnr_linear`].
pub fn osnr_db(link: &LinkDesign, launch_power_dbm: f64, carrier_thz: f64) -> f64 {
    ratio_to_db(osnr_linear(link, launch_power_dbm, carrier_thz))
}

/// Converts OSNR (reference bandwidth) to SNR in the signal's symbol-rate
/// bandwidth: `SNR = OSNR · B_ref / baud`.
pub fn osnr_to_snr_linear(osnr_linear: f64, baud_gbd: f64) -> f64 {
    assert!(baud_gbd > 0.0);
    osnr_linear * OSNR_REF_BANDWIDTH_HZ / (baud_gbd * 1e9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkDesign;

    #[test]
    fn single_span_osnr_matches_closed_form() {
        // Classic link-budget formula:
        // OSNR ≈ P_launch + 58 − NF − span_loss (dB) for one span.
        let link = LinkDesign::with_span(80.0, 80.0);
        let osnr = osnr_db(&link, 0.0, DEFAULT_CARRIER_THZ);
        let expected = 0.0 + 58.0 - 5.0 - 16.0;
        assert!(
            (osnr - expected).abs() < 0.2,
            "osnr={osnr} expected≈{expected}"
        );
    }

    #[test]
    fn osnr_drops_3db_when_spans_double() {
        let l1 = LinkDesign::with_span(800.0, 80.0); // 10 spans
        let l2 = LinkDesign::with_span(1600.0, 80.0); // 20 spans
        let d = osnr_db(&l1, 0.0, DEFAULT_CARRIER_THZ) - osnr_db(&l2, 0.0, DEFAULT_CARRIER_THZ);
        assert!((d - 3.0103).abs() < 0.01, "delta={d}");
    }

    #[test]
    fn osnr_increases_with_launch_power() {
        let l = LinkDesign::for_length(400.0);
        let low = osnr_db(&l, -3.0, DEFAULT_CARRIER_THZ);
        let high = osnr_db(&l, 3.0, DEFAULT_CARRIER_THZ);
        assert!((high - low - 6.0).abs() < 1e-9);
    }

    #[test]
    fn back_to_back_is_noiseless() {
        let l = LinkDesign::for_length(0.0);
        assert!(osnr_linear(&l, 0.0, DEFAULT_CARRIER_THZ).is_infinite());
    }

    #[test]
    fn snr_scales_with_baud() {
        // Wider symbol rate integrates more noise: SNR halves when baud
        // doubles.
        let s1 = osnr_to_snr_linear(1000.0, 32.0);
        let s2 = osnr_to_snr_linear(1000.0, 64.0);
        assert!((s1 / s2 - 2.0).abs() < 1e-12);
        // At baud = B_ref the two coincide.
        assert!((osnr_to_snr_linear(77.0, 12.5) - 77.0).abs() < 1e-9);
    }
}
