#!/usr/bin/env bash
# Schema check for Prometheus text exposition format on stdin.
#
# Validates the output of `trace_report --prom`:
#   * every line is either `# TYPE <name> <counter|gauge|histogram>` or a
#     sample `<name>[{key="value",...}] <number>`;
#   * every sample name was declared by a TYPE line (histogram samples via
#     their `_bucket`/`_sum`/`_count` suffixes, `_bucket` carrying an `le`
#     label, `+Inf` bucket equal to the series `_count`);
#   * histogram bucket counts are cumulative (non-decreasing per series);
#   * the cross-layer metrics the report must always contain are present.
#
# Usage: trace_report --prom | scripts/check_prometheus.sh
set -euo pipefail

# POSIX awk only (runs under mawk on CI): no 3-arg match, no length(array).
awk '
function fail(msg) { printf("line %d: %s\n  %s\n", NR, msg, $0); bad = 1 }

/^# TYPE / {
    if (NF != 4 || $3 !~ /^[a-zA-Z_:][a-zA-Z0-9_:]*$/ ||
        ($4 != "counter" && $4 != "gauge" && $4 != "histogram"))
        fail("malformed TYPE line")
    if (!($3 in type)) ndecl++
    type[$3] = $4
    next
}
/^#/ { next }
/^$/ { next }
{
    # Split "<name>[{labels}] <value>": the value is the last field; label
    # values never contain spaces in our exporter.
    value = $NF
    head = substr($0, 1, length($0) - length(value) - 1)
    if (value !~ /^([+-]Inf|NaN|-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?)$/) {
        fail("unparseable value `" value "`"); next
    }
    labels = ""
    name = head
    brace = index(head, "{")
    if (brace > 0) {
        name = substr(head, 1, brace - 1)
        labels = substr(head, brace)
        if (labels !~ /^\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\}$/)
            fail("malformed label set `" labels "`")
    }
    if (name !~ /^[a-zA-Z_:][a-zA-Z0-9_:]*$/) {
        fail("malformed metric name `" name "`"); next
    }

    base = name
    sub(/_(bucket|sum|count)$/, "", base)
    if (name in type) {
        if (type[name] == "histogram" && name !~ /_(bucket|sum|count)$/)
            fail("bare sample for histogram `" name "`")
        seen[name] = 1
    } else if (base in type && type[base] == "histogram") {
        seen[base] = 1
        if (name == base "_bucket") {
            if (labels !~ /le="/) fail("_bucket sample without le label")
            series = base labels
            sub(/,?le="[^"]*"/, "", series)
            if ((series in cum) && value + 0 < cum[series])
                fail("bucket counts not cumulative for `" series "`")
            cum[series] = value + 0
            if (labels ~ /le="\+Inf"/) inf[series] = value + 0
        }
        if (name == base "_count") {
            series = base labels
            if ((series in inf) && inf[series] != value + 0)
                fail("+Inf bucket != _count for `" series "`")
        }
    } else {
        fail("sample `" name "` has no TYPE declaration")
    }
}
END {
    n = split("netconf_edit_attempts_total tx_commits_total ctrl_sends_total " \
              "orchestrator_restorations_total telemetry_samples_total " \
              "planning_runs_total restore_runs_total solver_pivots_total " \
              "physim_ber_evals_total", required, " ")
    for (i = 1; i <= n; i++)
        if (!(required[i] in seen)) {
            printf("missing required metric: %s\n", required[i]); bad = 1
        }
    if (bad) exit 1
    printf("prometheus schema OK: %d metric names declared\n", ndecl)
}
'
