#!/usr/bin/env bash
# Perf-regression gate for the bench_eval harness.
#
# Compares a freshly generated BENCH_eval.json (first argument) against
# the checked-in baseline (second argument, default
# results/BENCH_eval.json): for each timed section (plan / restore /
# sweep, the availability-scenario sweep, the exact-model
# build/solve/re-solve timings, and the churn
# service's p50/p99 reaction time) the new
# wall-times may be at most TOLERANCE_PCT percent slower than the
# baseline (the exact-model timings, which time a single branch-and-bound
# solve rather than a large aggregate and so see much more scheduler
# noise, get their own looser EXACT_TOLERANCE_PCT). Deterministic fields (route-cache hits/misses/entries, the
# exact model's γ count and restored total) must match exactly — a
# changed count means the logic itself regressed, not the machine. The
# exact-build scaling probe must stay near-linear: doubling the γ count
# may grow build time by at most LINEARITY_SLACK times the γ ratio
# (the old quadratic builder sat at the ratio squared).
#
# Usage: scripts/check_bench_eval.sh BENCH_eval.json [results/BENCH_eval.json]
set -euo pipefail

new="${1:?usage: check_bench_eval.sh NEW.json [BASELINE.json]}"
base="${2:-results/BENCH_eval.json}"
tolerance_pct="${TOLERANCE_PCT:-25}"
exact_tolerance_pct="${EXACT_TOLERANCE_PCT:-75}"

# POSIX awk only; the JSON is our own canonical pretty-printer's output
# (one "key": value per line), so line-oriented extraction is exact.
field() { # field FILE SECTION KEY -> number
  awk -v section="\"$2\":" -v key="\"$3\":" '
    $1 == section { insec = 1 }
    insec && $1 == key { gsub(/,/, "", $2); print $2; exit }
    insec && /^  \}/ { insec = 0 }
  ' "$1"
}

bad=0
for section in plan restore sweep; do
  for kind in serial_ms parallel_ms; do
    b=$(field "$base" "$section" "$kind")
    n=$(field "$new" "$section" "$kind")
    if [ -z "$b" ] || [ -z "$n" ]; then
      echo "FAIL: $section.$kind missing (baseline='$b' new='$n')"
      bad=1
      continue
    fi
    ok=$(awk -v b="$b" -v n="$n" -v tol="$tolerance_pct" \
      'BEGIN { print (n <= b * (1 + tol / 100)) ? 1 : 0 }')
    verdict=ok
    if [ "$ok" != 1 ]; then verdict="REGRESSED (>${tolerance_pct}%)"; bad=1; fi
    printf '%-7s %-12s baseline %10.2fms  new %10.2fms  %s\n' \
      "$section" "$kind" "$b" "$n" "$verdict"
  done
done

for kind in build_ms solve_ms resolve_warm_ms resolve_scratch_ms; do
  b=$(field "$base" exact "$kind")
  n=$(field "$new" exact "$kind")
  if [ -z "$b" ] || [ -z "$n" ]; then
    echo "FAIL: exact.$kind missing (baseline='$b' new='$n')"
    bad=1
    continue
  fi
  ok=$(awk -v b="$b" -v n="$n" -v tol="$exact_tolerance_pct" \
    'BEGIN { print (n <= b * (1 + tol / 100)) ? 1 : 0 }')
  verdict=ok
  if [ "$ok" != 1 ]; then verdict="REGRESSED (>${exact_tolerance_pct}%)"; bad=1; fi
  printf '%-7s %-18s baseline %10.2fms  new %10.2fms  %s\n' \
    exact "$kind" "$b" "$n" "$verdict"
done

for key in hits misses entries; do
  b=$(field "$base" route_cache "$key")
  n=$(field "$new" route_cache "$key")
  if [ "$b" != "$n" ]; then
    echo "FAIL: route_cache.$key changed: baseline $b, new $n"
    bad=1
  else
    printf '%-7s %-12s %s (unchanged)\n' cache "$key" "$b"
  fi
done

for key in gammas restored_gbps_total; do
  b=$(field "$base" exact "$key")
  n=$(field "$new" exact "$key")
  if [ "$b" != "$n" ]; then
    echo "FAIL: exact.$key changed: baseline $b, new $n"
    bad=1
  else
    printf '%-7s %-18s %s (unchanged)\n' exact "$key" "$b"
  fi
done

for key in gammas_small gammas_large; do
  b=$(field "$base" exact_build_scaling "$key")
  n=$(field "$new" exact_build_scaling "$key")
  if [ "$b" != "$n" ]; then
    echo "FAIL: exact_build_scaling.$key changed: baseline $b, new $n"
    bad=1
  else
    printf '%-7s %-18s %s (unchanged)\n' scaling "$key" "$b"
  fi
done

# Churn gate: the service loop's p99 reaction time is the headline SLO
# (it is an order statistic over ~30 tick samples, so it gets its own
# looser CHURN_TOLERANCE_PCT), and the drill's work counters are
# deterministic for the pinned stream seed — a changed counter means the
# classification or ladder logic itself changed, not the machine.
churn_tolerance_pct="${CHURN_TOLERANCE_PCT:-100}"
for kind in reaction_p50_ms reaction_p99_ms; do
  b=$(field "$base" churn "$kind")
  n=$(field "$new" churn "$kind")
  if [ -z "$b" ] || [ -z "$n" ]; then
    echo "FAIL: churn.$kind missing (baseline='$b' new='$n')"
    bad=1
    continue
  fi
  ok=$(awk -v b="$b" -v n="$n" -v tol="$churn_tolerance_pct" \
    'BEGIN { print (n <= b * (1 + tol / 100)) ? 1 : 0 }')
  verdict=ok
  if [ "$ok" != 1 ]; then verdict="REGRESSED (>${churn_tolerance_pct}%)"; bad=1; fi
  printf '%-7s %-18s baseline %10.2fms  new %10.2fms  %s\n' \
    churn "$kind" "$b" "$n" "$verdict"
done

for key in ticks events_applied warm_mutations rebuilds restored_gbps_total; do
  b=$(field "$base" churn "$key")
  n=$(field "$new" churn "$key")
  if [ "$b" != "$n" ]; then
    echo "FAIL: churn.$key changed: baseline $b, new $n"
    bad=1
  else
    printf '%-7s %-18s %s (unchanged)\n' churn "$key" "$b"
  fi
done

# Scenario gate: the availability-surface sweep is timed serial and
# parallel (same TOLERANCE_PCT as the other aggregate sections), and its
# counters — cells, ladder evaluations, survival/restoration totals, and
# the per-rung split — are deterministic for the pinned seeds. A changed
# counter means scenario generation or the ladder itself changed.
for kind in serial_ms parallel_ms; do
  b=$(field "$base" scenario "$kind")
  n=$(field "$new" scenario "$kind")
  if [ -z "$b" ] || [ -z "$n" ]; then
    echo "FAIL: scenario.$kind missing (baseline='$b' new='$n')"
    bad=1
    continue
  fi
  ok=$(awk -v b="$b" -v n="$n" -v tol="$tolerance_pct" \
    'BEGIN { print (n <= b * (1 + tol / 100)) ? 1 : 0 }')
  verdict=ok
  if [ "$ok" != 1 ]; then verdict="REGRESSED (>${tolerance_pct}%)"; bad=1; fi
  printf '%-8s %-18s baseline %10.2fms  new %10.2fms  %s\n' \
    scenario "$kind" "$b" "$n" "$verdict"
done

for key in cells evaluations survived restored_gbps_total \
           exact_evaluations protect_evaluations; do
  b=$(field "$base" scenario "$key")
  n=$(field "$new" scenario "$key")
  if [ "$b" != "$n" ]; then
    echo "FAIL: scenario.$key changed: baseline $b, new $n"
    bad=1
  else
    printf '%-8s %-18s %s (unchanged)\n' scenario "$key" "$b"
  fi
done

# Linearity gate: time ratio must stay within LINEARITY_SLACK x the
# gamma ratio (computed from the *new* run — this is a property of the
# builder, not a comparison against the baseline machine).
linearity_slack="${LINEARITY_SLACK:-1.75}"
gr=$(field "$new" exact_build_scaling gamma_ratio)
tr=$(field "$new" exact_build_scaling time_ratio)
if [ -z "$gr" ] || [ -z "$tr" ]; then
  echo "FAIL: exact_build_scaling ratios missing (gamma='$gr' time='$tr')"
  bad=1
else
  ok=$(awk -v g="$gr" -v t="$tr" -v s="$linearity_slack" \
    'BEGIN { print (t <= g * s) ? 1 : 0 }')
  verdict=ok
  if [ "$ok" != 1 ]; then verdict="SUPERLINEAR (> ${linearity_slack}x gamma ratio)"; bad=1; fi
  printf '%-7s %-18s gamma ratio %.2f  time ratio %.2f  %s\n' \
    scaling linearity "$gr" "$tr" "$verdict"
fi

if [ "$bad" != 0 ]; then
  echo "bench_eval regression check FAILED"
  exit 1
fi
echo "bench_eval regression check passed (tolerance ${tolerance_pct}%)"
