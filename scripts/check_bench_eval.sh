#!/usr/bin/env bash
# Perf-regression gate for the PR 4 parallel/caching work.
#
# Compares a freshly generated BENCH_eval.json (first argument) against
# the checked-in baseline (second argument, default
# results/BENCH_eval.json): for each timed section (plan / restore /
# sweep) the new serial and parallel wall-times may be at most
# TOLERANCE_PCT percent slower than the baseline. Deterministic fields
# (route-cache hits/misses/entries) must match exactly — a changed count
# means the memoization itself regressed, not the machine.
#
# Usage: scripts/check_bench_eval.sh BENCH_eval.json [results/BENCH_eval.json]
set -euo pipefail

new="${1:?usage: check_bench_eval.sh NEW.json [BASELINE.json]}"
base="${2:-results/BENCH_eval.json}"
tolerance_pct="${TOLERANCE_PCT:-25}"

# POSIX awk only; the JSON is our own canonical pretty-printer's output
# (one "key": value per line), so line-oriented extraction is exact.
field() { # field FILE SECTION KEY -> number
  awk -v section="\"$2\":" -v key="\"$3\":" '
    $1 == section { insec = 1 }
    insec && $1 == key { gsub(/,/, "", $2); print $2; exit }
    insec && /^  \}/ { insec = 0 }
  ' "$1"
}

bad=0
for section in plan restore sweep; do
  for kind in serial_ms parallel_ms; do
    b=$(field "$base" "$section" "$kind")
    n=$(field "$new" "$section" "$kind")
    if [ -z "$b" ] || [ -z "$n" ]; then
      echo "FAIL: $section.$kind missing (baseline='$b' new='$n')"
      bad=1
      continue
    fi
    ok=$(awk -v b="$b" -v n="$n" -v tol="$tolerance_pct" \
      'BEGIN { print (n <= b * (1 + tol / 100)) ? 1 : 0 }')
    verdict=ok
    if [ "$ok" != 1 ]; then verdict="REGRESSED (>${tolerance_pct}%)"; bad=1; fi
    printf '%-7s %-12s baseline %10.2fms  new %10.2fms  %s\n' \
      "$section" "$kind" "$b" "$n" "$verdict"
  done
done

for key in hits misses entries; do
  b=$(field "$base" route_cache "$key")
  n=$(field "$new" route_cache "$key")
  if [ "$b" != "$n" ]; then
    echo "FAIL: route_cache.$key changed: baseline $b, new $n"
    bad=1
  else
    printf '%-7s %-12s %s (unchanged)\n' cache "$key" "$b"
  fi
done

if [ "$bad" != 0 ]; then
  echo "bench_eval regression check FAILED"
  exit 1
fi
echo "bench_eval regression check passed (tolerance ${tolerance_pct}%)"
