//! `flexwan` — command-line front-end to the FlexWAN reproduction.
//!
//! ```text
//! flexwan plan     --topology net.json [--scheme flexwan|radwan|100g] [--scale N] [--k K] [--defrag N]
//! flexwan restore  --topology net.json [--scheme …] --cut A-B [--cut C-D] [--plus]
//! flexwan export   --builtin tbackbone|cernet [--out net.json]
//! flexwan svt-table
//! flexwan help
//! ```
//!
//! Argument parsing is hand-rolled (the workspace carries no CLI
//! dependency); see `flexwan help` for the full reference.

use std::collections::HashMap;
use std::process::ExitCode;

use flexwan::core::planning::{plan, PlannerConfig};
use flexwan::core::restore::{flexwan_plus_extra_spares, restore, FailureScenario};
use flexwan::core::Scheme;
use flexwan::io::TopologyFile;
use flexwan::optical::transponder::SVT_TABLE;
use flexwan::topo::tbackbone::Backbone;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("run `flexwan help` for usage");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(cmd) = args.first() else {
        return Err("missing command".into());
    };
    let opts = parse_flags(&args[1..])?;
    match cmd.as_str() {
        "plan" => cmd_plan(&opts),
        "restore" => cmd_restore(&opts),
        "export" => cmd_export(&opts),
        "svt-table" => {
            cmd_svt_table();
            Ok(())
        }
        "help" | "--help" | "-h" => {
            print_help();
            Ok(())
        }
        other => Err(format!("unknown command {other}")),
    }
}

/// Parsed `--flag value` pairs (repeatable flags collect).
struct Opts(HashMap<String, Vec<String>>);

impl Opts {
    fn one(&self, key: &str) -> Option<&str> {
        self.0.get(key).and_then(|v| v.last()).map(String::as_str)
    }
    fn many(&self, key: &str) -> &[String] {
        self.0.get(key).map(Vec::as_slice).unwrap_or(&[])
    }
    fn flag(&self, key: &str) -> bool {
        self.0.contains_key(key)
    }
}

fn parse_flags(args: &[String]) -> Result<Opts, String> {
    let mut map: HashMap<String, Vec<String>> = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        let Some(key) = a.strip_prefix("--") else {
            return Err(format!("expected --flag, got {a}"));
        };
        // Boolean flags: --plus; valued flags take the next token.
        if matches!(key, "plus") {
            map.entry(key.to_string()).or_default();
            i += 1;
        } else {
            let v = args
                .get(i + 1)
                .ok_or_else(|| format!("--{key} needs a value"))?;
            map.entry(key.to_string()).or_default().push(v.clone());
            i += 2;
        }
    }
    Ok(Opts(map))
}

fn load_backbone(opts: &Opts) -> Result<Backbone, String> {
    if let Some(path) = opts.one("topology") {
        let json = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        TopologyFile::from_json(&json)
            .and_then(|tf| tf.build())
            .map_err(|e| e.to_string())
    } else if let Some(builtin) = opts.one("builtin") {
        builtin_backbone(builtin)
    } else {
        Err("need --topology FILE or --builtin NAME".into())
    }
}

fn builtin_backbone(name: &str) -> Result<Backbone, String> {
    match name {
        "tbackbone" => Ok(flexwan::topo::tbackbone::t_backbone(&Default::default())),
        "cernet" => Ok(flexwan::topo::cernet::cernet(&Default::default())),
        other => Err(format!("unknown builtin {other} (tbackbone|cernet)")),
    }
}

fn parse_scheme(opts: &Opts) -> Result<Scheme, String> {
    match opts.one("scheme").unwrap_or("flexwan") {
        "flexwan" => Ok(Scheme::FlexWan),
        "radwan" => Ok(Scheme::Radwan),
        "100g" | "100g-wan" => Ok(Scheme::FixedGrid100G),
        other => Err(format!("unknown scheme {other} (flexwan|radwan|100g)")),
    }
}

fn parse_config(opts: &Opts) -> Result<PlannerConfig, String> {
    let mut cfg = PlannerConfig::default();
    if let Some(k) = opts.one("k") {
        cfg.k_paths = k.parse().map_err(|_| format!("bad --k {k}"))?;
    }
    if let Some(d) = opts.one("defrag") {
        cfg.defrag_moves = d.parse().map_err(|_| format!("bad --defrag {d}"))?;
    }
    if let Some(e) = opts.one("epsilon") {
        cfg.epsilon = e.parse().map_err(|_| format!("bad --epsilon {e}"))?;
    }
    Ok(cfg)
}

fn cmd_plan(opts: &Opts) -> Result<(), String> {
    let b = load_backbone(opts)?;
    let scheme = parse_scheme(opts)?;
    let cfg = parse_config(opts)?;
    let scale: u64 = opts
        .one("scale")
        .unwrap_or("1")
        .parse()
        .map_err(|_| "bad --scale")?;
    let ip = b.ip.scaled(scale);
    let p = plan(scheme, &b.optical, &ip, &cfg);
    println!(
        "{}: {} wavelengths, {:.1} GHz spectrum, demand {} Gbps, unmet {} Gbps",
        scheme.name(),
        p.transponder_count(),
        p.spectrum_usage_ghz(),
        ip.total_demand_gbps(),
        p.unmet_gbps()
    );
    for w in &p.wavelengths {
        println!("  {w}");
    }
    if !p.is_feasible() {
        println!("NOT FEASIBLE: {} links unmet", p.unmet.len());
    }
    Ok(())
}

fn cmd_restore(opts: &Opts) -> Result<(), String> {
    let b = load_backbone(opts)?;
    let scheme = parse_scheme(opts)?;
    let cfg = parse_config(opts)?;
    let scale: u64 = opts
        .one("scale")
        .unwrap_or("1")
        .parse()
        .map_err(|_| "bad --scale")?;
    let ip = b.ip.scaled(scale);
    // Cuts are named A-B (all parallel fibers between A and B are cut).
    let mut cuts = Vec::new();
    for spec in opts.many("cut") {
        let (a, b_name) = spec
            .split_once('-')
            .ok_or_else(|| format!("--cut wants SRC-DST, got {spec}"))?;
        let na = b
            .optical
            .node_by_name(a)
            .ok_or_else(|| format!("unknown node {a}"))?;
        let nb = b
            .optical
            .node_by_name(b_name)
            .ok_or_else(|| format!("unknown node {b_name}"))?;
        let members: Vec<_> = b
            .optical
            .edges()
            .iter()
            .filter(|e| (e.a == na && e.b == nb) || (e.a == nb && e.b == na))
            .map(|e| e.id)
            .collect();
        if members.is_empty() {
            return Err(format!("no fiber between {a} and {b_name}"));
        }
        cuts.extend(members);
    }
    if cuts.is_empty() {
        return Err("need at least one --cut SRC-DST".into());
    }
    let p = plan(scheme, &b.optical, &ip, &cfg);
    let spares = if opts.flag("plus") {
        flexwan_plus_extra_spares(&b.optical, &ip, &cfg)
    } else {
        Vec::new()
    };
    let scenario = FailureScenario {
        id: 0,
        cuts,
        probability: 1.0,
    };
    let r = restore(&p, &b.optical, &ip, &scenario, &spares, &cfg);
    println!(
        "{}: affected {} Gbps, restored {} Gbps (capability {:.1}%)",
        scheme.name(),
        r.affected_gbps,
        r.restored_gbps,
        100.0 * r.capability()
    );
    for rw in &r.restored {
        println!("  {}", rw.wavelength);
    }
    Ok(())
}

fn cmd_export(opts: &Opts) -> Result<(), String> {
    let name = opts
        .one("builtin")
        .ok_or("need --builtin tbackbone|cernet")?;
    let b = builtin_backbone(name)?;
    let json = TopologyFile::from_backbone(&b).to_json();
    match opts.one("out") {
        Some(path) => {
            std::fs::write(path, json).map_err(|e| format!("writing {path}: {e}"))?;
            println!("wrote {path}");
        }
        None => println!("{json}"),
    }
    Ok(())
}

fn cmd_svt_table() {
    println!("SVT capability table (Table 2): rate, spacing → optical reach");
    for &(rate, ghz, reach) in SVT_TABLE {
        println!("  {rate:>4} Gbps @ {ghz:>6.1} GHz → {reach:>5} km");
    }
}

fn print_help() {
    println!(
        "flexwan — FlexWAN (SIGCOMM 2023) reproduction CLI

USAGE:
  flexwan plan     --topology FILE | --builtin NAME
                   [--scheme flexwan|radwan|100g] [--scale N]
                   [--k K] [--epsilon E] [--defrag MOVES]
  flexwan restore  --topology FILE | --builtin NAME --cut SRC-DST ...
                   [--scheme …] [--scale N] [--plus]
  flexwan export   --builtin tbackbone|cernet [--out FILE]
  flexwan svt-table
  flexwan help

The topology FILE is JSON: {{nodes, fibers: [{{a,b,km}}], links: [{{src,dst,gbps}}]}}."
    );
}
