//! JSON topology interchange: load/save backbones for the `flexwan` CLI
//! and for downstream users who keep their network descriptions in files.
//!
//! The format is deliberately small:
//!
//! ```json
//! {
//!   "nodes": ["SFO", "SJC", "LAX"],
//!   "fibers": [ {"a": "SFO", "b": "SJC", "km": 80},
//!               {"a": "SJC", "b": "LAX", "km": 550} ],
//!   "links":  [ {"src": "SFO", "dst": "LAX", "gbps": 800} ]
//! }
//! ```

use flexwan_topo::graph::Graph;
use flexwan_topo::ip::IpTopology;
use flexwan_topo::tbackbone::Backbone;
use flexwan_util::json::{self, FromJson, ToJson, Value};

/// A fiber segment in the interchange format.
#[derive(Debug, Clone)]
pub struct FiberSpec {
    /// One endpoint's node name.
    pub a: String,
    /// The other endpoint's node name.
    pub b: String,
    /// Length in km.
    pub km: u32,
}

/// An IP link in the interchange format.
#[derive(Debug, Clone)]
pub struct LinkSpec {
    /// Source node name.
    pub src: String,
    /// Destination node name.
    pub dst: String,
    /// Bandwidth-capacity demand, Gbps (multiple of 100).
    pub gbps: u64,
}

/// A whole backbone description.
#[derive(Debug, Clone)]
pub struct TopologyFile {
    /// ROADM site names (order defines node ids).
    pub nodes: Vec<String>,
    /// Fiber plant.
    pub fibers: Vec<FiberSpec>,
    /// IP links with demands.
    pub links: Vec<LinkSpec>,
}

/// Errors loading a topology file.
#[derive(Debug)]
pub enum LoadError {
    /// JSON syntax / shape problems.
    Json(json::Error),
    /// Semantic problems (unknown node names, empty sections, …).
    Invalid(String),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Json(e) => write!(f, "topology JSON error: {e}"),
            LoadError::Invalid(m) => write!(f, "invalid topology: {m}"),
        }
    }
}

impl std::error::Error for LoadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LoadError::Json(e) => Some(e),
            LoadError::Invalid(_) => None,
        }
    }
}

impl From<json::Error> for LoadError {
    fn from(e: json::Error) -> Self {
        LoadError::Json(e)
    }
}

impl ToJson for FiberSpec {
    fn to_json(&self) -> Value {
        Value::obj([
            ("a", Value::from(self.a.as_str())),
            ("b", Value::from(self.b.as_str())),
            ("km", self.km.to_json()),
        ])
    }
}

impl FromJson for FiberSpec {
    fn from_json(v: &Value) -> Result<Self, json::Error> {
        Ok(FiberSpec {
            a: v.field("a")?,
            b: v.field("b")?,
            km: v.field("km")?,
        })
    }
}

impl ToJson for LinkSpec {
    fn to_json(&self) -> Value {
        Value::obj([
            ("src", Value::from(self.src.as_str())),
            ("dst", Value::from(self.dst.as_str())),
            ("gbps", self.gbps.to_json()),
        ])
    }
}

impl FromJson for LinkSpec {
    fn from_json(v: &Value) -> Result<Self, json::Error> {
        Ok(LinkSpec {
            src: v.field("src")?,
            dst: v.field("dst")?,
            gbps: v.field("gbps")?,
        })
    }
}

impl ToJson for TopologyFile {
    fn to_json(&self) -> Value {
        Value::obj([
            ("nodes", self.nodes.to_json()),
            ("fibers", self.fibers.to_json()),
            ("links", self.links.to_json()),
        ])
    }
}

impl FromJson for TopologyFile {
    fn from_json(v: &Value) -> Result<Self, json::Error> {
        Ok(TopologyFile {
            nodes: v.field("nodes")?,
            fibers: v.field("fibers")?,
            links: v.field("links")?,
        })
    }
}

impl TopologyFile {
    /// Parses the interchange JSON.
    pub fn from_json(text: &str) -> Result<Self, LoadError> {
        Ok(json::from_str(text)?)
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        json::to_string_pretty(self)
    }

    /// Builds the in-memory [`Backbone`].
    pub fn build(&self) -> Result<Backbone, LoadError> {
        if self.nodes.is_empty() {
            return Err(LoadError::Invalid("no nodes".into()));
        }
        let mut g = Graph::new();
        let mut by_name = std::collections::HashMap::new();
        for name in &self.nodes {
            if by_name.contains_key(name.as_str()) {
                return Err(LoadError::Invalid(format!("duplicate node name {name}")));
            }
            by_name.insert(name.clone(), g.add_node(name.clone()));
        }
        let resolve = |name: &str| {
            by_name
                .get(name)
                .copied()
                .ok_or_else(|| LoadError::Invalid(format!("unknown node {name}")))
        };
        for f in &self.fibers {
            let (a, b) = (resolve(&f.a)?, resolve(&f.b)?);
            if a == b {
                return Err(LoadError::Invalid(format!("self-loop fiber at {}", f.a)));
            }
            if f.km == 0 {
                return Err(LoadError::Invalid(format!(
                    "zero-length fiber {}–{}",
                    f.a, f.b
                )));
            }
            g.add_edge(a, b, f.km);
        }
        let mut ip = IpTopology::new();
        for l in &self.links {
            let (src, dst) = (resolve(&l.src)?, resolve(&l.dst)?);
            if src == dst {
                return Err(LoadError::Invalid(format!(
                    "self-loop IP link at {}",
                    l.src
                )));
            }
            if l.gbps == 0 || l.gbps % 100 != 0 {
                return Err(LoadError::Invalid(format!(
                    "IP link {}–{} demand {} must be a positive multiple of 100 Gbps",
                    l.src, l.dst, l.gbps
                )));
            }
            ip.add_link(src, dst, l.gbps);
        }
        Ok(Backbone { optical: g, ip })
    }

    /// Exports a [`Backbone`] into the interchange format.
    pub fn from_backbone(b: &Backbone) -> TopologyFile {
        TopologyFile {
            nodes: b.optical.nodes().iter().map(|n| n.name.clone()).collect(),
            fibers: b
                .optical
                .edges()
                .iter()
                .map(|e| FiberSpec {
                    a: b.optical.node(e.a).name.clone(),
                    b: b.optical.node(e.b).name.clone(),
                    km: e.length_km,
                })
                .collect(),
            links: b
                .ip
                .links()
                .iter()
                .map(|l| LinkSpec {
                    src: b.optical.node(l.src).name.clone(),
                    dst: b.optical.node(l.dst).name.clone(),
                    gbps: l.demand_gbps,
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
        "nodes": ["A", "B", "C"],
        "fibers": [ {"a": "A", "b": "B", "km": 100},
                    {"a": "B", "b": "C", "km": 200},
                    {"a": "A", "b": "C", "km": 400} ],
        "links":  [ {"src": "A", "dst": "C", "gbps": 600} ]
    }"#;

    #[test]
    fn round_trips() {
        let tf = TopologyFile::from_json(SAMPLE).unwrap();
        let b = tf.build().unwrap();
        assert_eq!(b.optical.num_nodes(), 3);
        assert_eq!(b.optical.num_edges(), 3);
        assert_eq!(b.ip.num_links(), 1);
        let back = TopologyFile::from_backbone(&b);
        let rebuilt = TopologyFile::from_json(&back.to_json())
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(rebuilt.optical, b.optical);
        assert_eq!(rebuilt.ip, b.ip);
    }

    #[test]
    fn rejects_unknown_node() {
        let bad = SAMPLE.replace("\"src\": \"A\"", "\"src\": \"Z\"");
        let tf = TopologyFile::from_json(&bad).unwrap();
        assert!(matches!(tf.build(), Err(LoadError::Invalid(_))));
    }

    #[test]
    fn rejects_bad_demand() {
        let bad = SAMPLE.replace("600", "650");
        let tf = TopologyFile::from_json(&bad).unwrap();
        let err = tf.build().unwrap_err();
        assert!(err.to_string().contains("multiple of 100"));
    }

    #[test]
    fn rejects_duplicate_nodes_and_self_loops() {
        let dup = SAMPLE.replace("\"C\"]", "\"A\"]");
        assert!(TopologyFile::from_json(&dup).unwrap().build().is_err());
        let selfloop = SAMPLE.replace(
            "{\"a\": \"A\", \"b\": \"B\", \"km\": 100}",
            "{\"a\": \"A\", \"b\": \"A\", \"km\": 100}",
        );
        assert!(TopologyFile::from_json(&selfloop).unwrap().build().is_err());
    }

    #[test]
    fn rejects_malformed_json() {
        assert!(matches!(
            TopologyFile::from_json("{nope"),
            Err(LoadError::Json(_))
        ));
    }

    #[test]
    fn plannable_end_to_end() {
        use flexwan_core::planning::{plan, PlannerConfig};
        use flexwan_core::Scheme;
        let b = TopologyFile::from_json(SAMPLE).unwrap().build().unwrap();
        let p = plan(
            Scheme::FlexWan,
            &b.optical,
            &b.ip,
            &PlannerConfig::default(),
        );
        assert!(p.is_feasible());
    }
}
