//! Cross-layer validation: checking a plan against the physical layer.
//!
//! The planner trusts the SVT capability table (Table 2): a wavelength is
//! legal when its format's tabulated reach covers its path. This module
//! closes the loop the paper's testbed closes (§6): every planned
//! wavelength is re-evaluated on the simulated physical layer
//! (`flexwan-physim`) and its **SNR margin** — available SNR minus the
//! SNR its modulation/FEC needs — is reported. Production operators run
//! exactly this audit before lighting channels; wavelengths with thin or
//! negative margin get flagged for re-planning at a more conservative
//! format.

use flexwan_core::planning::Plan;
use flexwan_physim::ber::required_snr_linear;
use flexwan_physim::testbed::{LineConfig, Testbed};
use flexwan_physim::units::ratio_to_db;

/// Physical-layer audit result for one planned wavelength.
#[derive(Debug, Clone)]
pub struct WavelengthMargin {
    /// Index into the plan's wavelength list.
    pub index: usize,
    /// SNR the modulation/FEC needs for error-free decoding, dB.
    pub required_snr_db: f64,
    /// SNR the simulated line delivers over the wavelength's path, dB.
    pub available_snr_db: f64,
}

impl WavelengthMargin {
    /// Margin in dB (negative = the physical layer disagrees with the
    /// capability table for this operating point).
    pub fn margin_db(&self) -> f64 {
        self.available_snr_db - self.required_snr_db
    }
}

/// Summary of a cross-layer audit.
#[derive(Debug, Clone)]
pub struct MarginReport {
    /// Per-wavelength margins.
    pub margins: Vec<WavelengthMargin>,
}

impl MarginReport {
    /// Fraction of wavelengths with non-negative margin.
    pub fn healthy_fraction(&self) -> f64 {
        if self.margins.is_empty() {
            return 1.0;
        }
        self.margins.iter().filter(|m| m.margin_db() >= 0.0).count() as f64
            / self.margins.len() as f64
    }

    /// The thinnest margin in the plan, dB.
    pub fn worst_margin_db(&self) -> f64 {
        self.margins
            .iter()
            .map(WavelengthMargin::margin_db)
            .fold(f64::INFINITY, f64::min)
    }

    /// Mean margin, dB.
    pub fn mean_margin_db(&self) -> f64 {
        if self.margins.is_empty() {
            return 0.0;
        }
        self.margins
            .iter()
            .map(WavelengthMargin::margin_db)
            .sum::<f64>()
            / self.margins.len() as f64
    }
}

/// Audits every wavelength of `plan` on `testbed`'s physical layer.
pub fn validate_plan(plan: &Plan, testbed: &Testbed) -> MarginReport {
    let margins = plan
        .wavelengths
        .iter()
        .enumerate()
        .map(|(index, w)| {
            let cfg = LineConfig {
                data_rate_gbps: w.format.data_rate_gbps,
                spacing: w.format.spacing,
                fec: w.format.fec,
            };
            let available = testbed.snr_linear(&cfg, f64::from(w.path.length_km));
            let required = required_snr_linear(cfg.bits_per_symbol(), cfg.fec);
            WavelengthMargin {
                index,
                required_snr_db: ratio_to_db(required),
                available_snr_db: ratio_to_db(available),
            }
        })
        .collect();
    MarginReport { margins }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexwan_core::planning::{plan, PlannerConfig};
    use flexwan_core::Scheme;
    use flexwan_topo::tbackbone::{t_backbone, TBackboneConfig};

    #[test]
    fn planned_wavelengths_mostly_clear_physics() {
        let b = t_backbone(&TBackboneConfig::default());
        let cfg = PlannerConfig {
            k_paths: 5,
            ..PlannerConfig::default()
        };
        let testbed = Testbed::default();
        for scheme in Scheme::ALL {
            let p = plan(scheme, &b.optical, &b.ip, &cfg);
            let report = validate_plan(&p, &testbed);
            assert_eq!(report.margins.len(), p.wavelengths.len());
            // The capability table and the simulated physics agree within
            // the EXPERIMENTS.md calibration band: the overwhelming
            // majority of wavelengths clear physics, and no wavelength is
            // deeply under water.
            assert!(
                report.healthy_fraction() > 0.7,
                "{scheme}: only {:.0}% healthy",
                100.0 * report.healthy_fraction()
            );
            assert!(
                report.worst_margin_db() > -4.0,
                "{scheme}: worst margin {:.1} dB",
                report.worst_margin_db()
            );
        }
    }

    #[test]
    fn shorter_paths_have_fatter_margins() {
        let b = t_backbone(&TBackboneConfig::default());
        let cfg = PlannerConfig {
            k_paths: 5,
            ..PlannerConfig::default()
        };
        let p = plan(Scheme::FixedGrid100G, &b.optical, &b.ip, &cfg);
        let report = validate_plan(&p, &Testbed::default());
        // 100G-WAN uses one format everywhere, so margin is a pure
        // function of path length: compare the shortest vs longest path.
        let shortest = p
            .wavelengths
            .iter()
            .enumerate()
            .min_by_key(|(_, w)| w.path.length_km)
            .unwrap()
            .0;
        let longest = p
            .wavelengths
            .iter()
            .enumerate()
            .max_by_key(|(_, w)| w.path.length_km)
            .unwrap()
            .0;
        assert!(report.margins[shortest].margin_db() > report.margins[longest].margin_db() + 3.0);
    }

    #[test]
    fn empty_plan_is_trivially_healthy() {
        let report = MarginReport {
            margins: Vec::new(),
        };
        assert_eq!(report.healthy_fraction(), 1.0);
        assert_eq!(report.mean_margin_db(), 0.0);
    }
}
