//! # flexwan
//!
//! Facade crate of the FlexWAN reproduction (SIGCOMM 2023): re-exports
//! the whole workspace behind one dependency so applications can
//! `use flexwan::…` for everything.
//!
//! * [`optical`] — spectrum pixels/masks, modulation, the three
//!   transponder generations (fixed 100G, RADWAN BVT, FlexWAN SVT),
//!   MUX/ROADM/amplifier hardware models;
//! * [`topo`] — IP/optical topologies, K-shortest paths and
//!   parallel-conduit routes, the synthetic T-backbone and the CERNET
//!   backbone, demand generators;
//! * [`solver`] — the LP (simplex) + MIP (branch & bound) optimizer that
//!   stands in for Gurobi;
//! * [`physim`] — the §6 testbed simulator: spans, EDFA noise, OSNR,
//!   post-FEC BER, reach sweeps;
//! * [`core`] — the paper's contribution: Algorithm 1 network planning
//!   and §8 optical restoration, exact and heuristic, plus FlexWAN+;
//! * [`ctrl`] — the centralized multi-vendor controller, simulated
//!   devices, telemetry, failure detection, recovery and HA;
//! * [`obs`] — the zero-dependency observability layer: metrics registry
//!   (counters/gauges/histograms), span tracer, JSON + Prometheus export.
//!
//! Start with [`core::planning::plan`] and the `examples/` directory.

#![forbid(unsafe_code)]

pub mod io;
pub mod validate;

pub use flexwan_core as core;
pub use flexwan_ctrl as ctrl;
pub use flexwan_obs as obs;
pub use flexwan_optical as optical;
pub use flexwan_physim as physim;
pub use flexwan_solver as solver;
pub use flexwan_topo as topo;
