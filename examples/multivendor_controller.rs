//! Multi-vendor control plane: the centralized controller pushes one plan
//! to simulated devices from three vendors — each speaking its own
//! configuration dialect — then audits end-to-end channel consistency and
//! runs the §9 zero-touch misconnection recovery.
//!
//! ```text
//! cargo run --example multivendor_controller
//! ```

use flexwan::core::planning::{plan, PlannerConfig};
use flexwan::core::Scheme;
use flexwan::ctrl::config::StandardConfig;
use flexwan::ctrl::controller::Controller;
use flexwan::ctrl::model::Vendor;
use flexwan::ctrl::recovery::{recover_misconnection, RecoveryOutcome};
use flexwan::ctrl::vendor;
use flexwan::optical::spectrum::{PixelRange, PixelWidth};
use flexwan::optical::WssKind;
use flexwan::topo::graph::Graph;
use flexwan::topo::ip::IpTopology;

fn main() {
    // A three-site backbone; the controller assigns one vendor per site.
    let mut optical = Graph::new();
    let x = optical.add_node("X");
    let y = optical.add_node("Y");
    let z = optical.add_node("Z");
    optical.add_edge(x, y, 150);
    optical.add_edge(y, z, 200);
    optical.add_edge(x, z, 500);

    let mut ip = IpTopology::new();
    ip.add_link(x, z, 600);
    ip.add_link(x, y, 400);

    let cfg = PlannerConfig::default();
    let p = plan(Scheme::FlexWan, &optical, &ip, &cfg);
    println!("planned {} wavelengths", p.transponder_count());

    // One dialect, three renderings: the same standard document encoded
    // for each vendor.
    let sample = StandardConfig::MuxPort {
        port: 0,
        passband: Some(PixelRange::new(4, PixelWidth::new(6))),
    };
    println!("\nthe same passband in each vendor's native dialect:");
    for v in Vendor::ALL {
        println!("  {v:?}: {}", vendor::encode(v, &sample));
    }

    // Build the device plane (spawns device threads) and push the plan.
    let mut ctrl = Controller::build(&optical, WssKind::PixelWise, cfg.grid);
    let report = ctrl.apply_plan(&p, &optical);
    println!(
        "\napplied plan: {} transponder configs, {} MUX ports, {} ROADM expresses, {} rejections",
        report.transponders_configured,
        report.mux_ports_configured,
        report.expresses_configured,
        report.rejections.len()
    );

    // Audit: read back device state and verify channel consistency.
    let findings = ctrl.audit_plan(&p);
    if findings.is_empty() {
        println!("audit: zero channel inconsistency / conflict (§4.3)");
    } else {
        for f in findings {
            println!("audit finding: {f}");
        }
    }

    // §9: a transponder wired to the wrong MUX filter port.
    println!("\nmisconnection drill (wavelength at pixels 9..15, wired to port 4):");
    let channel = PixelRange::new(9, PixelWidth::new(6));
    for (label, wss) in [
        (
            "legacy fixed-grid OLS",
            WssKind::FixedGrid {
                spacing: PixelWidth::new(6),
            },
        ),
        ("spectrum-sliced OLS", WssKind::PixelWise),
    ] {
        match recover_misconnection(wss, 4, channel) {
            RecoveryOutcome::ZeroTouch { reconfigured_port } => {
                println!("  {label}: zero-touch — port {reconfigured_port} retuned in software")
            }
            RecoveryOutcome::ManualIntervention { reason } => {
                println!("  {label}: manual intervention — {reason}")
            }
        }
    }
}
