//! Capacity expansion study: how far each backbone architecture stretches
//! on the evaluation T-backbone as demand grows — a miniature of the §7
//! evaluation (Figure 12) driven through the public API.
//!
//! ```text
//! cargo run --release --example capacity_expansion
//! ```

use flexwan::core::planning::{max_feasible_scale, plan, PlannerConfig};
use flexwan::core::Scheme;
use flexwan::topo::tbackbone::{t_backbone, TBackboneConfig};

fn main() {
    let backbone = t_backbone(&TBackboneConfig::default());
    let cfg = PlannerConfig {
        k_paths: 5,
        ..PlannerConfig::default()
    };
    println!(
        "T-backbone: {} sites, {} fibers, {} IP links, {:.1} Tbps total demand\n",
        backbone.optical.num_nodes(),
        backbone.optical.num_edges(),
        backbone.ip.num_links(),
        backbone.ip.total_demand_gbps() as f64 / 1000.0
    );

    println!(
        "{:<10} {:>6} {:>14} {:>16} {:>10}",
        "scheme", "scale", "transponders", "spectrum (GHz)", "feasible"
    );
    for scheme in Scheme::ALL {
        for scale in [1u64, 3, 5] {
            let p = plan(scheme, &backbone.optical, &backbone.ip.scaled(scale), &cfg);
            println!(
                "{:<10} {:>5}x {:>14} {:>16.0} {:>10}",
                scheme.name(),
                scale,
                p.transponder_count(),
                p.spectrum_usage_ghz(),
                p.is_feasible()
            );
        }
        let max = max_feasible_scale(scheme, &backbone.optical, &backbone.ip, &cfg, 12);
        println!(
            "{:<10} supports up to {max}x the present-day demand\n",
            scheme.name()
        );
    }
}
