//! The physical layer end to end: engineer a line, sweep launch power to
//! its GN-model optimum, measure a transponder format's reach the way the
//! paper's testbed does (§6), and audit a plan's SNR margins.
//!
//! ```text
//! cargo run --release --example physical_layer
//! ```

use flexwan::core::planning::{plan, PlannerConfig};
use flexwan::core::Scheme;
use flexwan::optical::format::FecOverhead;
use flexwan::optical::spectrum::PixelWidth;
use flexwan::physim::link::LinkDesign;
use flexwan::physim::nonlinear::{optimize_launch, snr_db_at_launch, DEFAULT_ETA_PER_MW2};
use flexwan::physim::testbed::{LineConfig, Testbed};
use flexwan::topo::tbackbone::{t_backbone, TBackboneConfig};
use flexwan::validate::validate_plan;

fn main() {
    // 1. Engineer an 800 km line: ten 80 km spans, one EDFA each.
    let link = LinkDesign::for_length(800.0);
    println!(
        "800 km line: {} spans, {:.0} dB total loss (compensated)",
        link.num_amplifiers(),
        link.total_loss_db()
    );

    // 2. Launch-power dome: the GN-model optimum.
    println!("\nSNR vs per-channel launch power (GN model):");
    for dbm in [-6.0, -4.0, -2.0, 0.0, 2.0, 4.0] {
        println!(
            "  {dbm:>5.1} dBm → {:>5.2} dB",
            snr_db_at_launch(&link, dbm, DEFAULT_ETA_PER_MW2)
        );
    }
    let opt = optimize_launch(&link, DEFAULT_ETA_PER_MW2).unwrap();
    println!("  optimum: {:.2} dBm", opt.launch_dbm);

    // 3. The §6 measurement: push a 400 G / 100 GHz configuration out in
    //    distance until the post-FEC BER goes positive.
    let tb = Testbed::default();
    let cfg400 = LineConfig {
        data_rate_gbps: 400,
        spacing: PixelWidth::from_ghz(100.0).unwrap(),
        fec: FecOverhead::HIGH,
    };
    println!("\n400 Gbps @ 100 GHz reach sweep:");
    for km in [400.0, 800.0, 1000.0, 1200.0, 1600.0] {
        let ber = tb.post_fec_ber(&cfg400, km);
        println!(
            "  {km:>6.0} km → post-FEC BER {}",
            if ber == 0.0 {
                "0 (error-free)".into()
            } else {
                format!("{ber:.1e}")
            }
        );
    }
    println!(
        "  measured max reach: {} km (paper Table 2: 1500 km)",
        tb.max_reach_km(&cfg400)
    );

    // 4. Cross-layer audit of a full plan.
    let b = t_backbone(&TBackboneConfig::default());
    let p = plan(
        Scheme::FlexWan,
        &b.optical,
        &b.ip,
        &PlannerConfig {
            k_paths: 5,
            ..Default::default()
        },
    );
    let report = validate_plan(&p, &tb);
    println!(
        "\nFlexWAN plan audit: {} wavelengths, {:.0}% with non-negative SNR margin, mean margin {:+.1} dB",
        report.margins.len(),
        100.0 * report.healthy_fraction(),
        report.mean_margin_db()
    );
}
