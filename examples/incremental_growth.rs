//! Incremental growth: add demands to a live network without touching a
//! single running wavelength — and, when fragmentation bites, with a
//! bounded budget of hitless retunes (§9's smooth evolution, as an
//! operator would actually run it).
//!
//! ```text
//! cargo run --example incremental_growth
//! ```

use flexwan::core::planning::{plan, plan_incremental, PlannerConfig};
use flexwan::core::Scheme;
use flexwan::topo::graph::Graph;
use flexwan::topo::ip::IpTopology;

fn main() {
    let mut optical = Graph::new();
    let fra = optical.add_node("FRA");
    let ams = optical.add_node("AMS");
    let par = optical.add_node("PAR");
    optical.add_edge(fra, ams, 450);
    optical.add_edge(ams, par, 500);
    optical.add_edge(fra, par, 600);

    // Year 1: two links.
    let mut ip = IpTopology::new();
    ip.add_link(fra, ams, 800);
    ip.add_link(ams, par, 400);
    let cfg = PlannerConfig::default();
    let year1 = plan(Scheme::FlexWan, &optical, &ip, &cfg);
    println!(
        "year 1: {} wavelengths, {:.0} GHz",
        year1.transponder_count(),
        year1.spectrum_usage_ghz()
    );

    // Year 2: demands double and FRA–PAR appears. Incremental planning
    // provisions only the deficit.
    let mut ip2 = ip.scaled(2);
    ip2.add_link(fra, par, 600);
    let year2 = plan_incremental(&year1, &optical, &ip2, &cfg);
    println!(
        "year 2: {} wavelengths (+{} new), {:.0} GHz, feasible: {}",
        year2.transponder_count(),
        year2.transponder_count() - year1.transponder_count(),
        year2.spectrum_usage_ghz(),
        year2.is_feasible()
    );
    // Every year-1 wavelength is untouched — zero traffic impact.
    let untouched = year1
        .wavelengths
        .iter()
        .zip(&year2.wavelengths)
        .all(|(a, b)| a == b);
    println!("year-1 wavelengths untouched: {untouched}");

    println!("\nnew wavelengths lit in year 2:");
    for w in &year2.wavelengths[year1.wavelengths.len()..] {
        println!("  {w}");
    }
}
