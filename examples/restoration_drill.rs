//! Restoration drill: the §3.3 scenario end-to-end — a fiber cut is
//! detected from one-second telemetry, and the lost capacity is revived
//! on a longer path. RADWAN must degrade the data rate; FlexWAN widens
//! the channel spacing instead and revives everything.
//!
//! ```text
//! cargo run --example restoration_drill
//! ```

use flexwan::core::planning::{plan, PlannerConfig};
use flexwan::core::restore::{restore, FailureScenario};
use flexwan::core::Scheme;
use flexwan::ctrl::datastream::{FiberCutDetector, TelemetrySim, TelemetryStore};
use flexwan::topo::graph::Graph;
use flexwan::topo::ip::IpTopology;

fn main() {
    // The §3.3 topology: a 600 km primary path and a 1200 km detour.
    let mut optical = Graph::new();
    let a = optical.add_node("A");
    let b = optical.add_node("B");
    let c = optical.add_node("C");
    let primary = optical.add_edge(a, b, 600);
    optical.add_edge(a, c, 600);
    optical.add_edge(c, b, 600);

    let mut ip = IpTopology::new();
    ip.add_link(a, b, 300); // 300 Gbps demand on the A–B link

    let cfg = PlannerConfig::default();

    // --- Detection: the data-stream module watches per-fiber rx power. ---
    let sim = TelemetrySim::new(&optical);
    let mut store = TelemetryStore::new(60);
    let detector = FiberCutDetector::default();
    for tick in 0..10 {
        sim.tick(&mut store, tick, &[]); // healthy seconds
    }
    sim.tick(&mut store, 10, &[primary]); // the backhoe strikes
    let cut_fibers = detector.scan(&store);
    println!("tick 10: telemetry flags cut fibers {cut_fibers:?}");
    let scenario = FailureScenario {
        id: 0,
        cuts: cut_fibers,
        probability: 1.0,
    };

    // --- Restoration under each scheme. ---
    for scheme in [Scheme::Radwan, Scheme::FlexWan] {
        let p = plan(scheme, &optical, &ip, &cfg);
        let before = &p.wavelengths[0];
        println!("\n{}:", scheme.name());
        println!("  planned : {before}");
        let r = restore(&p, &optical, &ip, &scenario, &[], &cfg);
        for rw in &r.restored {
            println!("  restored: {}", rw.wavelength);
        }
        println!(
            "  revived {} of {} Gbps → restoration capability {:.0}%",
            r.restored_gbps,
            r.affected_gbps,
            100.0 * r.capability()
        );
    }
    println!("\nFlexWAN keeps the full 300 Gbps by widening the channel to 87.5 GHz;");
    println!("RADWAN is stuck at 75 GHz and must drop to 200 Gbps (paper §3.3).");
}
