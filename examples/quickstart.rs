//! Quickstart: plan cost-effective WAN capacity over a small optical
//! backbone with all three schemes and compare hardware costs.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use flexwan::core::planning::{plan, PlannerConfig};
use flexwan::core::Scheme;
use flexwan::topo::graph::Graph;
use flexwan::topo::ip::IpTopology;

fn main() {
    // 1. Describe the optical topology: four ROADM sites, five fibers.
    //    (Lengths in km; parallel fibers between the same sites are fine.)
    let mut optical = Graph::new();
    let sfo = optical.add_node("SFO");
    let sjc = optical.add_node("SJC");
    let lax = optical.add_node("LAX");
    let sea = optical.add_node("SEA");
    optical.add_edge(sfo, sjc, 80); // metro pair
    optical.add_edge(sfo, sjc, 82);
    optical.add_edge(sjc, lax, 550);
    optical.add_edge(sfo, sea, 1300);
    optical.add_edge(lax, sea, 1850);

    // 2. Describe the IP links and their bandwidth demands (Gbps).
    let mut ip = IpTopology::new();
    ip.add_link(sfo, sjc, 1600); // fat metro link
    ip.add_link(sjc, lax, 800);
    ip.add_link(sfo, sea, 400);
    ip.add_link(lax, sea, 300);

    // 3. Plan each scheme and compare.
    let cfg = PlannerConfig::default();
    println!(
        "{:<10} {:>12} {:>14} {:>10}",
        "scheme", "transponders", "spectrum (GHz)", "feasible"
    );
    for scheme in Scheme::ALL {
        let p = plan(scheme, &optical, &ip, &cfg);
        println!(
            "{:<10} {:>12} {:>14.1} {:>10}",
            scheme.name(),
            p.transponder_count(),
            p.spectrum_usage_ghz(),
            p.is_feasible()
        );
    }

    // 4. Inspect FlexWAN's wavelengths: rate/spacing tailored per path.
    let p = plan(Scheme::FlexWan, &optical, &ip, &cfg);
    println!("\nFlexWAN wavelength plan:");
    for w in &p.wavelengths {
        println!("  {w}");
    }
}
