//! Round-trip goldens for the exact optimization models: pins the full
//! output of `planning::solve_exact` (objective + every wavelength) and
//! `restore::solve_exact` (affected / restored Gbps, with and without
//! extra spares) on deterministic small instances.
//!
//! These files were blessed against the pre-`core::opt` hand-rolled
//! model builders; the suite therefore proves that rebuilding the same
//! formulations through the shared variable-space layer leaves both the
//! objectives and the extracted wavelength sets bit-for-bit unchanged.
//!
//! To bless an intentional change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p flexwan --test opt_roundtrip
//! git diff tests/golden/        # review, then commit
//! ```

use std::fmt::Write as _;
use std::path::PathBuf;

use flexwan::core::planning::{plan, solve_exact, PlannerConfig};
use flexwan::core::restore::{one_fiber_scenarios, solve_restoration_exact};
use flexwan::core::Scheme;
use flexwan::optical::spectrum::SpectrumGrid;
use flexwan::solver::SolveOptions;
use flexwan::topo::graph::Graph;
use flexwan::topo::ip::IpTopology;
use flexwan_util::rng::ChaCha8Rng;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Compares `got` against the checked-in golden file, or rewrites the
/// file when `UPDATE_GOLDEN` is set.
fn assert_golden(name: &str, got: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, got).expect("write golden file");
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); bless with UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        got,
        want,
        "golden output {} changed; if intentional, re-bless with \
         `UPDATE_GOLDEN=1 cargo test -p flexwan --test opt_roundtrip` \
         and commit the diff",
        path.display()
    );
}

/// Mirror of the 3-node generator in `planning_exact_vs_heuristic.rs`.
fn planning_instance(seed: u64) -> (Graph, IpTopology, PlannerConfig) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut g = Graph::new();
    let a = g.add_node("a");
    let b = g.add_node("b");
    let c = g.add_node("c");
    g.add_edge(a, b, rng.gen_range(100u32..800));
    g.add_edge(b, c, rng.gen_range(100u32..800));
    g.add_edge(a, c, rng.gen_range(200u32..1500));
    let mut ip = IpTopology::new();
    let links = rng.gen_range(1u32..=2);
    for _ in 0..links {
        let (src, dst) = match rng.gen_range(0u32..3) {
            0 => (a, b),
            1 => (b, c),
            _ => (a, c),
        };
        ip.add_link(src, dst, 100 * rng.gen_range(1u64..=5));
    }
    let cfg = PlannerConfig {
        grid: SpectrumGrid::new(rng.gen_range(12u32..18)),
        k_paths: 2,
        ..Default::default()
    };
    (g, ip, cfg)
}

/// Mirror of the 4-node generator in `restoration_validation.rs`.
fn restoration_instance(seed: u64) -> (Graph, IpTopology, PlannerConfig) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut g = Graph::new();
    let a = g.add_node("a");
    let b = g.add_node("b");
    let c = g.add_node("c");
    let d = g.add_node("d");
    g.add_edge(a, b, rng.gen_range(100u32..700));
    g.add_edge(b, c, rng.gen_range(100u32..700));
    g.add_edge(c, d, rng.gen_range(100u32..700));
    g.add_edge(d, a, rng.gen_range(100u32..700));
    g.add_edge(a, c, rng.gen_range(300u32..1200));
    let mut ip = IpTopology::new();
    for _ in 0..rng.gen_range(1u32..=2) {
        let (src, dst) = match rng.gen_range(0u32..3) {
            0 => (a, b),
            1 => (a, c),
            _ => (b, d),
        };
        ip.add_link(src, dst, 100 * rng.gen_range(1u64..=4));
    }
    let cfg = PlannerConfig {
        grid: SpectrumGrid::new(rng.gen_range(14u32..22)),
        k_paths: 2,
        ..Default::default()
    };
    (g, ip, cfg)
}

/// Exact planning: objective plus the full extracted wavelength set, per
/// seed and scheme.
#[test]
fn exact_plan_roundtrip_matches_golden() {
    let opts = SolveOptions {
        max_nodes: 50_000,
        ..Default::default()
    };
    let mut out = String::new();
    writeln!(
        out,
        "# Exact Algorithm 1 optima on the 3-node validation instances."
    )
    .unwrap();
    writeln!(
        out,
        "# Blessed output of tests/opt_roundtrip.rs; see that file for how to update."
    )
    .unwrap();
    for seed in 0..10u64 {
        let (g, ip, cfg) = planning_instance(seed);
        for scheme in [Scheme::FlexWan, Scheme::Radwan] {
            match solve_exact(scheme, &g, &ip, &cfg, &opts) {
                Some(e) => {
                    writeln!(
                        out,
                        "plan seed={seed} scheme={scheme} objective={:.6} transponders={}",
                        e.objective,
                        e.transponder_count()
                    )
                    .unwrap();
                    for w in &e.wavelengths {
                        writeln!(
                            out,
                            "  w link={} path={} rate={} width_px={} start={}",
                            w.link.0,
                            w.path_index,
                            w.format.data_rate_gbps,
                            w.format.spacing.pixels(),
                            w.channel.start
                        )
                        .unwrap();
                    }
                }
                None => writeln!(out, "plan seed={seed} scheme={scheme} infeasible").unwrap(),
            }
        }
    }
    assert_golden("opt_plan_roundtrip.txt", &out);
}

/// Exact restoration: affected / restored Gbps per one-fiber scenario,
/// both without and with uniform extra spares.
#[test]
fn exact_restoration_roundtrip_matches_golden() {
    let opts = SolveOptions {
        max_nodes: 50_000,
        ..Default::default()
    };
    let mut out = String::new();
    writeln!(
        out,
        "# Exact §8 restoration optima on the 4-node validation instances."
    )
    .unwrap();
    writeln!(
        out,
        "# Blessed output of tests/opt_roundtrip.rs; see that file for how to update."
    )
    .unwrap();
    for seed in 0..8u64 {
        let (g, ip, cfg) = restoration_instance(seed);
        let p = plan(Scheme::FlexWan, &g, &ip, &cfg);
        if !p.is_feasible() {
            writeln!(out, "restore seed={seed} plan-infeasible").unwrap();
            continue;
        }
        let spares = vec![1u32; ip.links().len()];
        for scenario in one_fiber_scenarios(&g) {
            for (tag, extra) in [("none", &[][..]), ("+1", &spares[..])] {
                match solve_restoration_exact(&p, &g, &ip, &scenario, extra, &cfg, &opts) {
                    Some(e) => writeln!(
                        out,
                        "restore seed={seed} scenario={} spares={tag} affected={} restored={}",
                        scenario.id, e.affected_gbps, e.restored_gbps
                    )
                    .unwrap(),
                    None => writeln!(
                        out,
                        "restore seed={seed} scenario={} spares={tag} no-incumbent",
                        scenario.id
                    )
                    .unwrap(),
                }
            }
        }
    }
    assert_golden("opt_restore_roundtrip.txt", &out);
}
