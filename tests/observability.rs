//! Determinism of the observability layer itself: under a [`ManualClock`]
//! two identical instrumented runs produce byte-identical telemetry, and
//! the recorded span tree / counter totals do not depend on how the work
//! was spread across threads (explicit-parent spans, no thread-locals).

use std::sync::Arc;
use std::thread;

use flexwan::core::planning::PlannerConfig;
use flexwan::core::restore::one_fiber_scenarios;
use flexwan::core::Scheme;
use flexwan::core::{plan_observed, restore_observed};
use flexwan::obs::{ManualClock, Obs};
use flexwan::optical::spectrum::SpectrumGrid;
use flexwan::topo::graph::Graph;
use flexwan::topo::ip::IpTopology;

fn instance() -> (Graph, IpTopology) {
    let mut g = Graph::new();
    let a = g.add_node("a");
    let b = g.add_node("b");
    let c = g.add_node("c");
    let d = g.add_node("d");
    g.add_edge(a, b, 150);
    g.add_edge(b, c, 200);
    g.add_edge(c, d, 250);
    g.add_edge(a, c, 500);
    let mut ip = IpTopology::new();
    ip.add_link(a, c, 600);
    ip.add_link(b, d, 500);
    (g, ip)
}

/// One instrumented planning + restoration pass, all layers recording
/// into `obs`.
fn run_workload(obs: &Obs) {
    let (g, ip) = instance();
    let cfg = PlannerConfig {
        grid: SpectrumGrid::new(96),
        ..PlannerConfig::default()
    };
    let root = obs.span("workload");
    let p = plan_observed(obs, Some(&root), Scheme::FlexWan, &g, &ip, &cfg);
    for scenario in &one_fiber_scenarios(&g) {
        let _ = restore_observed(obs, Some(&root), &p, &g, &ip, scenario, &[], &cfg);
    }
    root.end();
}

/// Two runs of the same workload under fresh manual clocks produce
/// byte-identical span trees and metric snapshots (JSON and Prometheus).
#[test]
fn identical_runs_produce_identical_telemetry() {
    let run = || {
        let obs = Obs::with_clock(Arc::new(ManualClock::new()));
        run_workload(&obs);
        (
            obs.span_tree(),
            obs.metrics_json(),
            obs.metrics_prometheus(),
        )
    };
    let first = run();
    let second = run();
    assert!(
        !first.0.is_empty() && first.0.contains("workload"),
        "{}",
        first.0
    );
    assert!(first.2.contains("planning_runs_total"), "{}", first.2);
    assert!(first.2.contains("restore_runs_total"), "{}", first.2);
    assert_eq!(first, second);
}

/// The rendered span tree and every counter total are identical whether
/// the items are processed by 1, 2, or 4 worker threads. Root spans are
/// opened on the coordinating thread (fixing sibling order); each item's
/// child spans are then created by exactly one worker, so the recorded
/// tree has no dependence on scheduling.
#[test]
fn telemetry_is_identical_across_thread_counts() {
    const ITEMS: usize = 12;
    let telemetry = |threads: usize| {
        let obs = Obs::with_clock(Arc::new(ManualClock::new()));
        let roots: Vec<_> = (0..ITEMS)
            .map(|i| obs.span(format!("item.{i:02}")))
            .collect();
        let per_thread = ITEMS.div_ceil(threads);
        thread::scope(|s| {
            for chunk in roots.chunks(per_thread) {
                let obs = &obs;
                s.spawn(move || {
                    for root in chunk {
                        for step in 0..3u64 {
                            let child = root.child(format!("step.{step}"));
                            child.field("step", step);
                            obs.registry().counter("work_steps_total").inc();
                            obs.registry()
                                .counter_with("work_items_total", &[("kind", "synthetic")])
                                .inc();
                            child.end();
                        }
                        obs.observe_since("work_item_seconds", obs.now_ns());
                    }
                });
            }
        });
        drop(roots);
        (obs.span_tree(), obs.metrics_prometheus())
    };

    let single = telemetry(1);
    // 12 roots, 3 children each.
    assert_eq!(single.0.lines().count(), ITEMS * 4, "{}", single.0);
    assert!(
        single
            .1
            .contains(&format!("work_steps_total {}", ITEMS * 3)),
        "{}",
        single.1
    );
    assert_eq!(single, telemetry(2));
    assert_eq!(single, telemetry(4));
}

/// A full chaos drill — faulted device plane, self-healing convergence,
/// telemetry-driven restoration — records the identical span tree and
/// counter values on every run under the manual clock. This is the
/// in-test twin of CI's `trace_report --clock=manual` double-run diff.
#[test]
fn chaos_drill_telemetry_is_deterministic() {
    use flexwan::core::planning::plan;
    use flexwan::ctrl::{
        Controller, DeviceFaults, FaultInjector, FaultPlan, Orchestrator, TelemetrySim,
        TelemetryStore,
    };
    use flexwan::optical::WssKind;

    let drill = || {
        let obs = Obs::with_clock(Arc::new(ManualClock::new()));
        let (g, ip) = instance();
        let cfg = PlannerConfig {
            grid: SpectrumGrid::new(96),
            ..PlannerConfig::default()
        };
        let p = plan(Scheme::FlexWan, &g, &ip, &cfg);
        assert!(p.is_feasible());

        let mut ctrl = Controller::build(&g, WssKind::PixelWise, cfg.grid);
        ctrl.set_obs(obs.clone());
        let faults = DeviceFaults {
            drop_prob: 0.1,
            delay_reply_prob: 0.1,
            ..Default::default()
        };
        ctrl.arm_faults(Arc::new(FaultInjector::new(FaultPlan::uniform(7, faults))));
        ctrl.apply_plan(&p, &g);
        let report = ctrl.converge(&p, 64);
        assert!(report.converged);

        let primary = p.wavelengths[0].path.edges[0];
        let mut store = TelemetryStore::new(30);
        store.set_obs(obs.clone());
        let mut orch = Orchestrator::new(&g, &ip, p, cfg, Vec::new());
        orch.set_obs(obs.clone());
        let sim = TelemetrySim::new(&g);
        for t in 0..3 {
            sim.tick(&mut store, t, &[]);
            orch.tick(&store, &mut ctrl);
        }
        sim.tick(&mut store, 3, &[primary]);
        orch.tick(&store, &mut ctrl);
        (
            obs.span_tree(),
            obs.metrics_json(),
            obs.metrics_prometheus(),
        )
    };

    let first = drill();
    assert!(first.0.contains("ctrl.converge"), "{}", first.0);
    assert!(first.0.contains("orch.tick"), "{}", first.0);
    assert!(first.2.contains("ctrl_sends_total"), "{}", first.2);
    assert!(
        first.2.contains("orchestrator_restorations_total"),
        "{}",
        first.2
    );
    assert!(first.2.contains("telemetry_samples_total"), "{}", first.2);
    assert_eq!(first, drill());
}

/// The manual clock drives exact, reproducible durations: advancing it is
/// the only way time passes, and the rendered tree / histogram reflect
/// the advances exactly.
#[test]
fn manual_clock_yields_exact_durations() {
    let clock = Arc::new(ManualClock::new());
    let obs = Obs::with_clock(clock.clone());

    let outer = obs.span("outer");
    clock.advance_micros(1_500);
    let inner = outer.child("inner");
    clock.advance_micros(500);
    inner.end();
    outer.end();

    let tree = obs.span_tree();
    assert!(tree.contains("outer (2.00ms)"), "{tree}");
    assert!(tree.contains("inner (500.0µs)"), "{tree}");

    let start = obs.now_ns();
    clock.advance_micros(2_000);
    obs.observe_since("op_seconds", start);
    let prom = obs.metrics_prometheus();
    assert!(prom.contains("op_seconds_count 1"), "{prom}");
    // 2 ms lands in the (1e-3, 1e-2] latency bucket, and in every wider one.
    assert!(prom.contains("op_seconds_bucket{le=\"0.001\"} 0"), "{prom}");
    assert!(prom.contains("op_seconds_bucket{le=\"0.01\"} 1"), "{prom}");
}
