//! Golden-output regression tests: the headline numbers of the paper's
//! evaluation, pinned to checked-in expected files.
//!
//! `paper_claims.rs` asserts *ranges* (orderings, rough factors) so the
//! reproduction tracks the paper's qualitative claims; this suite pins the
//! *exact* values our deterministic pipeline produces on the canonical
//! T-backbone instance. Any change to planning, restoration, the solver,
//! or the topology generator that moves a headline number — even within
//! the qualitative ranges — shows up here as a one-line diff.
//!
//! To bless an intentional change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p flexwan --test golden_outputs
//! git diff tests/golden/        # review the number movement, then commit
//! ```

use std::fmt::Write as _;
use std::path::PathBuf;

use flexwan::core::planning::{percent_saved, plan, PlannerConfig};
use flexwan::core::restore::{conduit_cut_scenarios, restore, restore_report};
use flexwan::core::Scheme;
use flexwan::topo::tbackbone::{t_backbone, Backbone, TBackboneConfig};

fn instance() -> (Backbone, PlannerConfig) {
    (
        t_backbone(&TBackboneConfig::default()),
        PlannerConfig {
            k_paths: 5,
            ..PlannerConfig::default()
        },
    )
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Compares `got` against the checked-in golden file, or rewrites the file
/// when `UPDATE_GOLDEN` is set.
fn assert_golden(name: &str, got: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, got).expect("write golden file");
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); bless with UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        got,
        want,
        "golden output {} changed; if intentional, re-bless with \
         `UPDATE_GOLDEN=1 cargo test -p flexwan --test golden_outputs` \
         and commit the diff",
        path.display()
    );
}

/// The paper's headline numbers (§7 cost savings, §8 restoration), exact.
#[test]
fn headline_numbers_match_golden() {
    let (b, cfg) = instance();
    let mut out = String::new();
    writeln!(
        out,
        "# Headline numbers, T-backbone default instance, k_paths=5."
    )
    .unwrap();
    writeln!(
        out,
        "# Blessed output of tests/golden_outputs.rs; see that file for how to update."
    )
    .unwrap();

    // §7 / Figure 12: deployed cost per scheme at scale 1.
    let plans: Vec<_> = Scheme::ALL
        .iter()
        .map(|&s| plan(s, &b.optical, &b.ip, &cfg))
        .collect();
    for (scheme, p) in Scheme::ALL.iter().zip(&plans) {
        assert!(p.is_feasible(), "{scheme} must stay feasible at scale 1");
        writeln!(out, "transponders[{scheme}] = {}", p.transponder_count()).unwrap();
        writeln!(
            out,
            "spectrum_ghz[{scheme}] = {:.2}",
            p.spectrum_usage_ghz()
        )
        .unwrap();
    }

    // The headline savings percentages (paper: 85 % / 57 % transponders,
    // 67 % / 36 % spectrum).
    let (fixed, radwan, flex) = (&plans[0], &plans[1], &plans[2]);
    let pct = |baseline: f64, ours: f64| format!("{:.2}", percent_saved(baseline, ours));
    writeln!(
        out,
        "transponder_saving_vs_100g_pct = {}",
        pct(
            fixed.transponder_count() as f64,
            flex.transponder_count() as f64
        )
    )
    .unwrap();
    writeln!(
        out,
        "transponder_saving_vs_radwan_pct = {}",
        pct(
            radwan.transponder_count() as f64,
            flex.transponder_count() as f64
        )
    )
    .unwrap();
    writeln!(
        out,
        "spectrum_saving_vs_100g_pct = {}",
        pct(fixed.spectrum_usage_ghz(), flex.spectrum_usage_ghz())
    )
    .unwrap();
    writeln!(
        out,
        "spectrum_saving_vs_radwan_pct = {}",
        pct(radwan.spectrum_usage_ghz(), flex.spectrum_usage_ghz())
    )
    .unwrap();

    // §8 / Figure 15(b): mean restoration capability under 5x overload,
    // conduit-cut scenario set (paper: FlexWAN +15 % over RADWAN).
    let scenarios = conduit_cut_scenarios(&b.optical);
    let ip5 = b.ip.scaled(5);
    for &scheme in Scheme::ALL.iter() {
        let p = plan(scheme, &b.optical, &ip5, &cfg);
        let results: Vec<_> = scenarios
            .iter()
            .map(|s| (s.probability, restore(&p, &b.optical, &ip5, s, &[], &cfg)))
            .collect();
        let rep = restore_report(&results);
        writeln!(
            out,
            "restore_capability_5x[{scheme}] = {:.4}",
            rep.mean_capability()
        )
        .unwrap();
    }

    // §8 / Figure 15(a): restored paths are longer than the originals
    // (scale 1, FlexWAN).
    let results: Vec<_> = scenarios
        .iter()
        .map(|s| {
            (
                s.probability,
                restore(flex, &b.optical, &b.ip, s, &[], &cfg),
            )
        })
        .collect();
    let rep = restore_report(&results);
    writeln!(
        out,
        "restore_capability_1x[{}] = {:.4}",
        Scheme::FlexWan,
        rep.mean_capability()
    )
    .unwrap();
    writeln!(
        out,
        "restored_paths_longer_fraction = {:.4}",
        rep.fraction_longer()
    )
    .unwrap();
    writeln!(
        out,
        "restored_path_max_length_ratio = {:.4}",
        rep.max_length_ratio()
    )
    .unwrap();

    assert_golden("headline_numbers.txt", &out);
}

/// The availability surface on the suite backbone, exact: a scenario
/// suite (exhaustive single cuts, sampled 2- and 3-cuts) crossed with
/// demand perturbations and spare budgets under the FlexWAN ladder.
/// Any movement in scenario generation, the restorers, protection, or
/// the budget-allowance fold shows up as a one-line diff.
#[test]
fn availability_surface_matches_golden() {
    use flexwan::core::scenario::{demand_scenarios, scenario_suite, EngineConfig, ScenarioEngine};
    use flexwan::topo::cache::RouteCache;

    let (b, cfg) = instance();
    // The §8 overloaded regime — same 5x scaling as the headline
    // restoration numbers — so the surface has structure to pin.
    let ip5 = b.ip.scaled(5);
    let suite = scenario_suite(&b.optical, 3, 256, 16, 7);
    let demands = demand_scenarios(&ip5, 2, 0.2, 7);
    let cache = RouteCache::new();
    let mut engine = ScenarioEngine::new(
        Scheme::FlexWan,
        &b.optical,
        &ip5,
        &cfg,
        &cache,
        EngineConfig::default(),
    );
    let surface = engine.evaluate(&suite, &demands);

    let mut out = String::new();
    writeln!(
        out,
        "# Availability surface, T-backbone default instance at 5x, k_paths=5."
    )
    .unwrap();
    writeln!(
        out,
        "# k=1 exhaustive (252 cuts); k=2,3 sampled (16 each, seed 7); 3 demand scenarios."
    )
    .unwrap();
    out.push_str(&surface.render());
    assert_golden("availability_surface.txt", &out);
}

/// Figure 14 shapes as exact numbers: median reach gap and mean spectral
/// efficiency per scheme.
#[test]
fn reach_gap_and_spectral_efficiency_match_golden() {
    let (b, cfg) = instance();
    let mut out = String::new();
    writeln!(
        out,
        "# Reach-gap / spectral-efficiency summary (Figure 14), exact."
    )
    .unwrap();
    for &scheme in Scheme::ALL.iter() {
        let p = plan(scheme, &b.optical, &b.ip, &cfg);
        let mut gaps: Vec<i64> = p.wavelengths.iter().map(|w| w.reach_gap_km()).collect();
        gaps.sort_unstable();
        let ses: Vec<f64> = p
            .wavelengths
            .iter()
            .map(|w| w.spectral_efficiency())
            .collect();
        let mean_se = ses.iter().sum::<f64>() / ses.len() as f64;
        writeln!(
            out,
            "median_reach_gap_km[{scheme}] = {}",
            gaps[gaps.len() / 2]
        )
        .unwrap();
        writeln!(out, "mean_spectral_efficiency[{scheme}] = {mean_se:.4}").unwrap();
    }
    assert_golden("reach_gap_se.txt", &out);
}
