//! Cross-cutting robustness checks: every fallible subsystem's error type
//! composes behind `Box<dyn Error>`, and zero-touch misconnection
//! recovery behaves per §9 across the WSS generations.

use std::error::Error;

use flexwan::ctrl::ha::ClusterError;
use flexwan::ctrl::model::DeviceId;
use flexwan::ctrl::{recover_misconnection, RecoveryOutcome, SessionError, TxError};
use flexwan::io::LoadError;
use flexwan::optical::spectrum::{PixelRange, PixelWidth};
use flexwan::optical::{OpticalError, WssKind};

// ---- Error-trait composition ----

fn all_errors() -> Vec<Box<dyn Error>> {
    vec![
        Box::new(SessionError::Rejected("slot busy".into())),
        Box::new(SessionError::Unreachable),
        Box::new(SessionError::ProtocolViolation),
        Box::new(TxError {
            failed_device: DeviceId(4),
            cause: "simulated".into(),
            rolled_back: 2,
            rollback_failures: Vec::new(),
        }),
        Box::new(ClusterError::NoHealthyReplica),
        Box::new(OpticalError::SpectrumConflict {
            range: PixelRange::new(3, PixelWidth::new(6)),
        }),
        Box::new(LoadError::Invalid("no nodes".into())),
    ]
}

#[test]
fn every_subsystem_error_composes_behind_dyn_error() {
    for e in all_errors() {
        let msg = e.to_string();
        assert!(!msg.is_empty(), "Display must say something");
        // Debug comes with the Error supertrait bundle.
        assert!(!format!("{e:?}").is_empty());
    }
}

#[test]
fn dyn_errors_downcast_to_their_concrete_types() {
    let errs = all_errors();
    assert!(errs[0].downcast_ref::<SessionError>().is_some());
    assert!(errs[3].downcast_ref::<TxError>().is_some());
    assert!(errs[4].downcast_ref::<ClusterError>().is_some());
    assert!(errs[5].downcast_ref::<OpticalError>().is_some());
    assert!(errs[6].downcast_ref::<LoadError>().is_some());
    assert!(
        errs[0].downcast_ref::<TxError>().is_none(),
        "downcast is type-exact"
    );
}

#[test]
fn load_error_chains_its_json_source() {
    let bad = flexwan::io::TopologyFile::from_json("{ not json").unwrap_err();
    let e: Box<dyn Error> = Box::new(bad);
    assert!(matches!(
        e.downcast_ref::<LoadError>(),
        Some(LoadError::Json(_))
    ));
    assert!(
        e.source().is_some(),
        "the JSON cause is reachable via source()"
    );
    // Semantic errors have no upstream cause.
    let invalid: Box<dyn Error> = Box::new(LoadError::Invalid("empty".into()));
    assert!(invalid.source().is_none());
}

#[test]
fn tx_error_display_names_device_and_rollback() {
    let e = TxError {
        failed_device: DeviceId(7),
        cause: "passband overlap".into(),
        rolled_back: 3,
        rollback_failures: Vec::new(),
    };
    let msg = e.to_string();
    assert!(msg.contains("passband overlap"));
    assert!(msg.contains('3'));
}

// ---- Misconnection recovery across WSS generations (§9) ----

#[test]
fn pixel_wise_recovery_matrix_is_all_zero_touch() {
    for port in [0u16, 1, 13, 63] {
        for (start, width) in [(0u32, 4u16), (7, 6), (30, 8), (361, 9)] {
            let out = recover_misconnection(
                WssKind::PixelWise,
                port,
                PixelRange::new(start, PixelWidth::new(width)),
            );
            assert_eq!(
                out,
                RecoveryOutcome::ZeroTouch {
                    reconfigured_port: port
                }
            );
        }
    }
}

#[test]
fn fixed_grid_recovery_matrix_matches_the_factory_ladder() {
    // On an AWG-style MUX, port p is factory-bound to the slot starting at
    // pixel p·spacing and exactly spacing wide; everything else is a
    // truck roll.
    for spacing in [4u16, 6, 8] {
        let wss = WssKind::FixedGrid {
            spacing: PixelWidth::new(spacing),
        };
        for port in 0u16..6 {
            for slot in 0u16..6 {
                for width in [spacing, spacing - 1] {
                    let channel = PixelRange::new(
                        u32::from(slot) * u32::from(spacing),
                        PixelWidth::new(width),
                    );
                    let out = recover_misconnection(wss, port, channel);
                    let lucky = slot == port && width == spacing;
                    match out {
                        RecoveryOutcome::ZeroTouch { reconfigured_port } => {
                            assert!(lucky, "spacing {spacing} port {port} slot {slot} width {width} must not be recoverable");
                            assert_eq!(reconfigured_port, port);
                        }
                        RecoveryOutcome::ManualIntervention { reason } => {
                            assert!(!lucky, "lucky case needs no truck roll");
                            assert!(reason.contains("re-cabling"), "{reason}");
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn off_grid_channel_is_never_recoverable_on_fixed_grid() {
    let wss = WssKind::FixedGrid {
        spacing: PixelWidth::new(6),
    };
    // Starts that are not multiples of the spacing can match no port.
    for start in [1u32, 5, 7, 13] {
        for port in 0u16..8 {
            let out = recover_misconnection(wss, port, PixelRange::new(start, PixelWidth::new(6)));
            assert!(matches!(out, RecoveryOutcome::ManualIntervention { .. }));
        }
    }
}
