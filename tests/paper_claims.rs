//! End-to-end shape checks of the paper's evaluation claims (§3, §7, §8)
//! on the canonical T-backbone instance. Absolute values are ours (the
//! production topology is confidential); orderings and rough factors are
//! the reproduction target — see EXPERIMENTS.md.

use flexwan::core::planning::{mean, plan, PlannerConfig};
use flexwan::core::restore::{conduit_cut_scenarios, restore, restore_report};
use flexwan::core::Scheme;
use flexwan::topo::ksp::shortest_path;
use flexwan::topo::tbackbone::{t_backbone, Backbone, TBackboneConfig};
use std::collections::HashSet;

fn instance() -> (Backbone, PlannerConfig) {
    (
        t_backbone(&TBackboneConfig::default()),
        PlannerConfig {
            k_paths: 5,
            ..PlannerConfig::default()
        },
    )
}

#[test]
fn fig2a_half_of_paths_are_short() {
    let (b, _) = instance();
    let none = HashSet::new();
    let lengths: Vec<u32> =
        b.ip.links()
            .iter()
            .map(|l| {
                shortest_path(&b.optical, l.src, l.dst, &none)
                    .unwrap()
                    .length_km
            })
            .collect();
    let short = lengths.iter().filter(|&&d| d < 200).count() as f64 / lengths.len() as f64;
    assert!((0.4..=0.65).contains(&short), "fraction <200 km = {short}");
    assert!(lengths.iter().any(|&d| d > 1500), "long tail missing");
}

#[test]
fn section7_savings_ordering_and_magnitude() {
    let (b, cfg) = instance();
    let counts: Vec<(usize, f64)> = Scheme::ALL
        .iter()
        .map(|&s| {
            let p = plan(s, &b.optical, &b.ip, &cfg);
            assert!(p.is_feasible(), "{s} infeasible at scale 1");
            (p.transponder_count(), p.spectrum_usage_ghz())
        })
        .collect();
    let (fixed, radwan, flex) = (counts[0], counts[1], counts[2]);
    // Strict ordering, both metrics.
    assert!(
        flex.0 < radwan.0 && radwan.0 < fixed.0,
        "transponder ordering"
    );
    assert!(flex.1 < radwan.1 && radwan.1 < fixed.1, "spectrum ordering");
    // Magnitudes near the paper's headline (85 % / 57 % and 67 % / 36 %).
    let tr_vs_fixed = 1.0 - flex.0 as f64 / fixed.0 as f64;
    let tr_vs_radwan = 1.0 - flex.0 as f64 / radwan.0 as f64;
    let sp_vs_fixed = 1.0 - flex.1 / fixed.1;
    let sp_vs_radwan = 1.0 - flex.1 / radwan.1;
    assert!(
        (0.70..=0.92).contains(&tr_vs_fixed),
        "tr saving vs 100G = {tr_vs_fixed}"
    );
    assert!(
        (0.35..=0.70).contains(&tr_vs_radwan),
        "tr saving vs RADWAN = {tr_vs_radwan}"
    );
    assert!(
        (0.50..=0.80).contains(&sp_vs_fixed),
        "sp saving vs 100G = {sp_vs_fixed}"
    );
    assert!(
        (0.25..=0.55).contains(&sp_vs_radwan),
        "sp saving vs RADWAN = {sp_vs_radwan}"
    );
}

#[test]
fn fig14_gap_and_spectral_efficiency_shapes() {
    let (b, cfg) = instance();
    let gaps_sse: Vec<(Vec<i64>, Vec<f64>)> = Scheme::ALL
        .iter()
        .map(|&s| {
            let p = plan(s, &b.optical, &b.ip, &cfg);
            (
                p.wavelengths.iter().map(|w| w.reach_gap_km()).collect(),
                p.wavelengths
                    .iter()
                    .map(|w| w.spectral_efficiency())
                    .collect(),
            )
        })
        .collect();
    let median = |v: &[i64]| {
        let mut s = v.to_vec();
        s.sort_unstable();
        s[s.len() / 2]
    };
    // Gap ordering: FlexWAN ≪ RADWAN ≪ 100G-WAN.
    assert!(median(&gaps_sse[2].0) < median(&gaps_sse[1].0) / 2);
    assert!(median(&gaps_sse[1].0) < median(&gaps_sse[0].0));
    // 100G-WAN gaps are mostly > 1000 km (paper: 80 %).
    let above1000 =
        gaps_sse[0].0.iter().filter(|&&g| g > 1000).count() as f64 / gaps_sse[0].0.len() as f64;
    assert!(above1000 > 0.7, "100G gaps >1000 km: {above1000}");
    // SE: 100G-WAN exactly 2; FlexWAN the highest.
    assert!(gaps_sse[0].1.iter().all(|&s| (s - 2.0).abs() < 1e-12));
    assert!(mean(&gaps_sse[2].1) > mean(&gaps_sse[1].1));
    assert!(mean(&gaps_sse[1].1) > mean(&gaps_sse[0].1));
}

#[test]
fn section8_overloaded_restoration_ordering() {
    let (b, cfg) = instance();
    let scenarios = conduit_cut_scenarios(&b.optical);
    let mean_cap = |scheme: Scheme, scale: u64| -> f64 {
        let ip = b.ip.scaled(scale);
        let p = plan(scheme, &b.optical, &ip, &cfg);
        let results: Vec<_> = scenarios
            .iter()
            .map(|s| (s.probability, restore(&p, &b.optical, &ip, s, &[], &cfg)))
            .collect();
        restore_report(&results).mean_capability()
    };
    // Underloaded: everyone restores nearly everything.
    for s in Scheme::ALL {
        let c = mean_cap(s, 1);
        assert!(c > 0.9, "{s} capability at 1x = {c}");
    }
    // Overloaded at 5x: FlexWAN clearly ahead of RADWAN ahead of 100G-WAN
    // (paper: +15 % over RADWAN).
    let fixed = mean_cap(Scheme::FixedGrid100G, 5);
    let radwan = mean_cap(Scheme::Radwan, 5);
    let flex = mean_cap(Scheme::FlexWan, 5);
    assert!(flex > radwan + 0.05, "flex {flex} vs radwan {radwan}");
    assert!(radwan > fixed, "radwan {radwan} vs fixed {fixed}");
}

#[test]
fn fig15a_restored_paths_are_longer() {
    let (b, cfg) = instance();
    let p = plan(Scheme::FlexWan, &b.optical, &b.ip, &cfg);
    let scenarios = conduit_cut_scenarios(&b.optical);
    let results: Vec<_> = scenarios
        .iter()
        .map(|s| (s.probability, restore(&p, &b.optical, &b.ip, s, &[], &cfg)))
        .collect();
    let rep = restore_report(&results);
    // Paper: ≈90 % of restored paths are longer, with multi-x extremes
    // (>10x in production; our denser synthetic metro yields ~4-8x).
    assert!(
        rep.fraction_longer() > 0.7,
        "longer fraction {}",
        rep.fraction_longer()
    );
    assert!(
        rep.max_length_ratio() > 3.0,
        "max ratio {}",
        rep.max_length_ratio()
    );
}
