//! Randomized property tests over the core data structures and
//! invariants, driven by a seeded [`ChaCha8Rng`] so every run replays the
//! same cases (no external property-testing framework required).

use std::collections::HashSet;

use flexwan::core::planning::format_dp::select_formats;
use flexwan::core::Scheme;
use flexwan::ctrl::model::Vendor;
use flexwan::ctrl::vendor;
use flexwan::ctrl::StandardConfig;
use flexwan::optical::spectrum::{PixelRange, PixelWidth, SpectrumGrid, SpectrumMask};
use flexwan::solver::{LinExpr, Model, Sense, Status};
use flexwan::topo::graph::Graph;
use flexwan::topo::ksp::k_shortest_paths;
use flexwan_util::rng::ChaCha8Rng;

/// Occupy/release round-trips leave the mask exactly as before, and
/// occupancy accounting matches the sum of live ranges.
#[test]
fn spectrum_mask_accounting() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xA001);
    for _case in 0..128 {
        let grid = SpectrumGrid::c_band();
        let mut mask = SpectrumMask::new(grid);
        let mut live: Vec<PixelRange> = Vec::new();
        let n_ops = rng.gen_range(1usize..40);
        for _ in 0..n_ops {
            let r = PixelRange::new(
                rng.gen_range(0u32..370),
                PixelWidth::new(rng.gen_range(1u16..13)),
            );
            if grid.contains(&r) && mask.is_free(&r) {
                mask.occupy(&r).unwrap();
                live.push(r);
            }
        }
        let expected: u32 = live.iter().map(|r| u32::from(r.width.pixels())).sum();
        assert_eq!(mask.occupied_pixels(), expected);
        // Releasing everything restores an empty mask.
        for r in &live {
            mask.release(r).unwrap();
        }
        assert_eq!(mask.occupied_pixels(), 0);
    }
}

/// first_fit always returns a free range, and there is no free run of
/// the requested width starting below it.
#[test]
fn first_fit_is_lowest() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xA002);
    for _case in 0..128 {
        let grid = SpectrumGrid::new(96);
        let mut mask = SpectrumMask::new(grid);
        for _ in 0..rng.gen_range(0usize..20) {
            let r = PixelRange::new(
                rng.gen_range(0u32..90),
                PixelWidth::new(rng.gen_range(1u16..8)),
            );
            if grid.contains(&r) && mask.is_free(&r) {
                mask.occupy(&r).unwrap();
            }
        }
        let want = rng.gen_range(1u16..10);
        let w = PixelWidth::new(want);
        match mask.first_fit(w) {
            Some(hit) => {
                assert!(mask.is_free(&hit));
                for s in 0..hit.start {
                    assert!(
                        !mask.is_free(&PixelRange::new(s, w)),
                        "free run below first_fit at {s}"
                    );
                }
            }
            None => {
                for s in 0..=(96 - u32::from(want)) {
                    assert!(!mask.is_free(&PixelRange::new(s, w)));
                }
            }
        }
    }
}

/// The format-selection DP always covers the demand with reachable
/// formats, never uses more transponders than the 100 G fallback, and
/// never does worse (in objective) than any single-format solution.
#[test]
fn format_dp_covers_and_is_competitive() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xA003);
    for _case in 0..128 {
        let demand = rng.gen_range(1u64..25) * 100;
        let distance = rng.gen_range(50u32..5200);
        let model = Scheme::FlexWan.transponder();
        match select_formats(model, demand, distance, 1e-3) {
            None => {
                assert!(model.formats_reaching(distance).is_empty());
            }
            Some(formats) => {
                let total: u64 = formats.iter().map(|f| u64::from(f.data_rate_gbps)).sum();
                assert!(total >= demand, "covers demand");
                for f in &formats {
                    assert!(f.reach_km >= distance, "reach constraint");
                }
                let cost: f64 = formats.iter().map(|f| 1.0 + 1e-3 * f.spacing.ghz()).sum();
                // Compare against every single-format alternative.
                for alt in model.formats_reaching(distance) {
                    let n = demand.div_ceil(u64::from(alt.data_rate_gbps));
                    let alt_cost = n as f64 * (1.0 + 1e-3 * alt.spacing.ghz());
                    assert!(
                        cost <= alt_cost + 1e-9,
                        "DP cost {cost} beats single-format {alt_cost}"
                    );
                }
            }
        }
    }
}

/// Simplex: on random bounded LPs the solution is feasible and at
/// least as good as a sample of random feasible points.
#[test]
fn simplex_dominates_random_feasible_points() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xA004);
    for _case in 0..128 {
        let (c1, c2) = (rng.gen_range(-5.0f64..5.0), rng.gen_range(-5.0f64..5.0));
        let (a, b) = (rng.gen_range(1.0f64..4.0), rng.gen_range(1.0f64..4.0));
        let rhs = rng.gen_range(2.0f64..20.0);
        let mut m = Model::new();
        let x = m.continuous("x", 0.0, 10.0);
        let y = m.continuous("y", 0.0, 10.0);
        m.le(a * x + b * y, rhs);
        m.set_objective(Sense::Maximize, c1 * x + c2 * y);
        let sol = m.solve();
        assert_eq!(sol.status, Status::Optimal);
        assert!(m.is_feasible(&sol.values, 1e-6));
        for _ in 0..10 {
            let (px, py) = (rng.gen_range(0.0f64..10.0), rng.gen_range(0.0f64..10.0));
            if a * px + b * py <= rhs {
                let val = c1 * px + c2 * py;
                assert!(
                    sol.objective >= val - 1e-6,
                    "optimal {} < feasible probe {}",
                    sol.objective,
                    val
                );
            }
        }
    }
}

/// Branch & bound matches brute force on random 0/1 knapsacks.
#[test]
fn mip_matches_bruteforce_knapsack() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xA005);
    for _case in 0..128 {
        let n = rng.gen_range(2usize..9);
        let weights: Vec<u32> = (0..n).map(|_| rng.gen_range(1u32..15)).collect();
        let values: Vec<u32> = (0..n).map(|_| rng.gen_range(1u32..20)).collect();
        let cap = rng.gen_range(5u32..40);
        // Brute force.
        let mut best = 0u32;
        for pick in 0u32..(1 << n) {
            let (mut w, mut v) = (0u32, 0u32);
            for i in 0..n {
                if pick & (1 << i) != 0 {
                    w += weights[i];
                    v += values[i];
                }
            }
            if w <= cap {
                best = best.max(v);
            }
        }
        // MIP.
        let mut m = Model::new();
        let vars: Vec<_> = (0..n).map(|i| m.binary(format!("b{i}"))).collect();
        let wexpr = LinExpr::sum(vars.iter().zip(&weights).map(|(&v, &w)| f64::from(w) * v));
        m.le(wexpr, f64::from(cap));
        let vexpr = LinExpr::sum(
            vars.iter()
                .zip(&values)
                .map(|(&var, &val)| f64::from(val) * var),
        );
        m.set_objective(Sense::Maximize, vexpr);
        let sol = m.solve();
        assert_eq!(sol.status, Status::Optimal);
        assert!(
            (sol.objective - f64::from(best)).abs() < 1e-6,
            "mip {} vs brute {}",
            sol.objective,
            best
        );
    }
}

/// Vendor adapters are lossless for arbitrary MUX-port configs.
#[test]
fn vendor_dialects_round_trip() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xA006);
    for _case in 0..128 {
        let port = rng.gen_range(0u16..64);
        let clear = rng.gen_bool(0.5);
        let passband = (!clear).then(|| {
            PixelRange::new(
                rng.gen_range(0u32..370),
                PixelWidth::new(rng.gen_range(1u16..13)),
            )
        });
        let cfg = StandardConfig::MuxPort { port, passband };
        for v in Vendor::ALL {
            let back = vendor::decode(v, &vendor::encode(v, &cfg)).unwrap();
            assert_eq!(back, cfg);
        }
    }
}

/// Node-distinct routes: hop alternatives connect the right node
/// pairs, the conservative length is the max realization, and every
/// realization is a valid path.
#[test]
fn routes_are_consistent() {
    use flexwan::topo::route::k_shortest_routes;
    let mut rng = ChaCha8Rng::seed_from_u64(0xA007);
    for _case in 0..64 {
        let n = rng.gen_range(3usize..6);
        let pair_fibers: Vec<usize> = (0..n).map(|_| rng.gen_range(1usize..4)).collect();
        let lens: Vec<u32> = (0..n).map(|_| rng.gen_range(20u32..400)).collect();
        let mut g = Graph::new();
        let nodes: Vec<_> = (0..=n).map(|i| g.add_node(format!("n{i}"))).collect();
        for i in 0..n {
            for p in 0..pair_fibers[i] {
                g.add_edge(nodes[i], nodes[i + 1], lens[i] + p as u32);
            }
        }
        let routes = k_shortest_routes(&g, nodes[0], nodes[n], 3, &HashSet::new());
        assert_eq!(routes.len(), 1, "a chain has one node-distinct route");
        let r = &routes[0];
        assert_eq!(r.hops.len(), n);
        for (i, hop) in r.hops.iter().enumerate() {
            assert_eq!(hop.len(), pair_fibers[i]);
        }
        // Conservative length = Σ max parallel length.
        let expect: u32 = (0..n).map(|i| lens[i] + (pair_fibers[i] - 1) as u32).sum();
        assert_eq!(r.length_km, expect);
        // Any per-hop choice realizes a valid path no longer than that.
        let chosen: Vec<_> = r.hops.iter().map(|h| h[0]).collect();
        let path = r.realize(&g, &chosen);
        assert!(path.length_km <= r.length_km);
    }
}

/// Defragmentation preserves the global no-overlap invariant and
/// never loses a wavelength.
#[test]
fn defrag_preserves_invariants() {
    use flexwan::core::defrag::make_room;
    use flexwan::core::planning::SpectrumState;
    use flexwan::core::Wavelength;
    use flexwan::optical::format::TransponderFormat;
    use flexwan::topo::ip::IpLinkId;
    use flexwan::topo::route::k_shortest_routes;

    let mut rng = ChaCha8Rng::seed_from_u64(0xA008);
    for _case in 0..64 {
        let n_seed = rng.gen_range(1usize..5);
        let starts: Vec<u32> = (0..n_seed).map(|_| rng.gen_range(0u32..28)).collect();
        let widths: Vec<u16> = (0..n_seed).map(|_| rng.gen_range(2u16..6)).collect();
        let want = rng.gen_range(4u16..12);

        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let e = g.add_edge(a, b, 100);
        let grid = SpectrumGrid::new(32);
        let mut s = SpectrumState::new(grid, 1);
        let path = flexwan::topo::Path::new(&g, vec![a, b], vec![e]);
        let mut wl: Vec<Wavelength> = Vec::new();
        for (&st, &wd) in starts.iter().zip(&widths) {
            let r = PixelRange::new(st, PixelWidth::new(wd));
            if grid.contains(&r) && s.mask(flexwan::topo::EdgeId(0)).is_free(&r) {
                s.occupy_exact(&path, &r).unwrap();
                wl.push(Wavelength {
                    link: IpLinkId(0),
                    path_index: 0,
                    path: path.clone(),
                    format: TransponderFormat::derive(100, PixelWidth::new(4), 3000),
                    channel: r,
                });
            }
        }
        let n_before = wl.len();
        let route = k_shortest_routes(&g, a, b, 1, &HashSet::new()).remove(0);
        let result = make_room(&mut s, &mut wl, &route, PixelWidth::new(want), 1, 3, &g);
        assert_eq!(wl.len(), n_before, "no wavelength lost");
        // No overlaps among wavelengths (and the new channel, if any).
        let mut ranges: Vec<PixelRange> = wl.iter().map(|w| w.channel).collect();
        if let Some(out) = &result {
            ranges.push(out.channel);
            for st in &out.steps {
                assert!(!st.from.overlaps(&st.to), "make-before-break");
            }
        }
        for (i, r1) in ranges.iter().enumerate() {
            for r2 in &ranges[i + 1..] {
                assert!(!r1.overlaps(r2), "overlap after defrag");
            }
        }
        // Mask occupancy equals the sum of live ranges.
        let expected: u32 = ranges.iter().map(|r| u32::from(r.width.pixels())).sum();
        assert_eq!(s.mask(flexwan::topo::EdgeId(0)).occupied_pixels(), expected);
    }
}

/// Yen's KSP on random connected graphs: sorted, loopless, distinct,
/// and the first path is the Dijkstra optimum.
#[test]
fn ksp_properties() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xA009);
    for _case in 0..64 {
        let n = rng.gen_range(4usize..9);
        let k = rng.gen_range(1usize..5);
        let mut g = Graph::new();
        let nodes: Vec<_> = (0..n).map(|i| g.add_node(format!("n{i}"))).collect();
        // Spanning chain keeps it connected.
        for w in nodes.windows(2) {
            g.add_edge(w[0], w[1], 100);
        }
        for _ in 0..rng.gen_range(2usize..12) {
            let a = rng.gen_range(0usize..8) % n;
            let b = rng.gen_range(0usize..8) % n;
            if a != b {
                g.add_edge(nodes[a], nodes[b], rng.gen_range(1u32..500));
            }
        }
        let src = nodes[0];
        let dst = nodes[n - 1];
        let paths = k_shortest_paths(&g, src, dst, k, &HashSet::new());
        assert!(!paths.is_empty());
        let mut seen = HashSet::new();
        for w in paths.windows(2) {
            assert!(w[0].length_km <= w[1].length_km);
        }
        for p in &paths {
            assert!(!p.has_loop());
            assert_eq!(p.source(), src);
            assert_eq!(p.destination(), dst);
            assert!(seen.insert(p.edges.clone()), "duplicate path");
        }
        let best = flexwan::topo::ksp::shortest_path(&g, src, dst, &HashSet::new()).unwrap();
        assert_eq!(paths[0].length_km, best.length_km);
    }
}

/// Shared generator for the planner/restoration invariants: a random
/// connected optical graph (spanning chain + chords) and a random IP
/// demand set over distinct node pairs.
fn random_instance(rng: &mut ChaCha8Rng) -> (Graph, flexwan::topo::ip::IpTopology) {
    let n = rng.gen_range(4usize..8);
    let mut g = Graph::new();
    let nodes: Vec<_> = (0..n).map(|i| g.add_node(format!("n{i}"))).collect();
    for w in nodes.windows(2) {
        g.add_edge(w[0], w[1], rng.gen_range(50u32..900));
    }
    for _ in 0..rng.gen_range(1usize..6) {
        let a = rng.gen_range(0usize..16) % n;
        let b = rng.gen_range(0usize..16) % n;
        if a != b {
            g.add_edge(nodes[a], nodes[b], rng.gen_range(50u32..1500));
        }
    }
    let mut ip = flexwan::topo::ip::IpTopology::new();
    for _ in 0..rng.gen_range(1usize..5) {
        let a = rng.gen_range(0usize..16) % n;
        let b = rng.gen_range(0usize..16) % n;
        if a != b {
            ip.add_link(nodes[a], nodes[b], rng.gen_range(1u64..10) * 100);
        }
    }
    (g, ip)
}

/// Planner invariants on random instances, every scheme: each channel
/// sits inside the fiber's grid (never outside the C-band), two
/// wavelengths sharing a fiber never overlap in spectrum, and every
/// wavelength's format reaches over its optical path. These must hold
/// whether or not the plan is feasible (tight grids are generated on
/// purpose).
#[test]
fn planned_wavelengths_respect_spectrum_and_reach() {
    use flexwan::core::planning::{plan, PlannerConfig};

    let mut rng = ChaCha8Rng::seed_from_u64(0xA00A);
    for _case in 0..32 {
        let (g, ip) = random_instance(&mut rng);
        if ip.num_links() == 0 {
            continue;
        }
        let grid = if rng.gen_bool(0.5) {
            SpectrumGrid::c_band()
        } else {
            SpectrumGrid::new(rng.gen_range(16u32..64))
        };
        let cfg = PlannerConfig {
            grid,
            k_paths: 2,
            ..PlannerConfig::default()
        };
        for &scheme in Scheme::ALL.iter() {
            let p = plan(scheme, &g, &ip, &cfg);
            for w in &p.wavelengths {
                assert!(
                    grid.contains(&w.channel),
                    "{scheme}: channel outside the grid"
                );
                assert!(
                    w.format.reach_km >= w.path.length_km,
                    "{scheme}: reach {} km < path {} km",
                    w.format.reach_km,
                    w.path.length_km
                );
                assert!(!w.path.has_loop(), "{scheme}: looping optical path");
            }
            for (i, w1) in p.wavelengths.iter().enumerate() {
                for w2 in &p.wavelengths[i + 1..] {
                    let share_fiber = w1.path.edges.iter().any(|e| w2.path.edges.contains(e));
                    assert!(
                        !(share_fiber && w1.channel.overlaps(&w2.channel)),
                        "{scheme}: spectrum overlap on a shared fiber"
                    );
                }
            }
        }
    }
}

/// Restoration invariants on random instances: revived wavelengths ride
/// only surviving fibers, never revive more than was lost, stay inside
/// the grid, and never collide — with each other or with the surviving
/// wavelengths of the original plan.
#[test]
fn restoration_uses_only_surviving_fibers() {
    use flexwan::core::planning::{plan, PlannerConfig};
    use flexwan::core::restore::{one_fiber_scenarios, restore};

    let mut rng = ChaCha8Rng::seed_from_u64(0xA00B);
    for _case in 0..16 {
        let (g, ip) = random_instance(&mut rng);
        if ip.num_links() == 0 {
            continue;
        }
        let cfg = PlannerConfig {
            grid: SpectrumGrid::new(rng.gen_range(24u32..80)),
            k_paths: 2,
            ..PlannerConfig::default()
        };
        for &scheme in Scheme::ALL.iter() {
            let p = plan(scheme, &g, &ip, &cfg);
            for scenario in &one_fiber_scenarios(&g) {
                let r = restore(&p, &g, &ip, scenario, &[], &cfg);
                assert!(
                    r.restored_gbps <= r.affected_gbps,
                    "{scheme}: revived more than lost"
                );
                let surviving: Vec<_> = p
                    .wavelengths
                    .iter()
                    .filter(|w| w.path.edges.iter().all(|&e| !scenario.is_cut(e)))
                    .collect();
                for rw in &r.restored {
                    let w = &rw.wavelength;
                    for &e in &w.path.edges {
                        assert!(
                            !scenario.is_cut(e),
                            "{scheme}: restored path crosses a cut fiber"
                        );
                    }
                    assert!(
                        cfg.grid.contains(&w.channel),
                        "{scheme}: restored channel off-grid"
                    );
                    assert!(
                        w.format.reach_km >= w.path.length_km,
                        "{scheme}: restored over reach"
                    );
                    for s in &surviving {
                        let share = w.path.edges.iter().any(|e| s.path.edges.contains(e));
                        assert!(
                            !(share && w.channel.overlaps(&s.channel)),
                            "{scheme}: restored channel collides with a surviving wavelength"
                        );
                    }
                }
                for (i, r1) in r.restored.iter().enumerate() {
                    for r2 in &r.restored[i + 1..] {
                        let share = r1
                            .wavelength
                            .path
                            .edges
                            .iter()
                            .any(|e| r2.wavelength.path.edges.contains(e));
                        assert!(
                            !(share && r1.wavelength.channel.overlaps(&r2.wavelength.channel)),
                            "{scheme}: two restored channels collide"
                        );
                    }
                }
            }
        }
    }
}

/// k-cut restoration invariant on random instances: for every sampled
/// multi-fiber cut, no restored route traverses *any* cut fiber, and
/// revived capacity never exceeds what was lost.
#[test]
fn k_cut_restoration_avoids_every_cut_fiber() {
    use flexwan::core::planning::{plan, PlannerConfig};
    use flexwan::core::restore::restore;
    use flexwan::core::scenario::sampled_k_cut_scenarios;

    let mut rng = ChaCha8Rng::seed_from_u64(0xA00C);
    for case in 0..12 {
        let (g, ip) = random_instance(&mut rng);
        if ip.num_links() == 0 {
            continue;
        }
        let cfg = PlannerConfig {
            grid: SpectrumGrid::new(rng.gen_range(24u32..80)),
            k_paths: 2,
            ..PlannerConfig::default()
        };
        let p = plan(Scheme::FlexWan, &g, &ip, &cfg);
        for k in 2..=3usize.min(g.num_edges()) {
            for scenario in &sampled_k_cut_scenarios(&g, k, 6, 0xC0FFEE ^ case) {
                let r = restore(&p, &g, &ip, scenario, &[], &cfg);
                assert!(r.restored_gbps <= r.affected_gbps, "revived more than lost");
                for rw in &r.restored {
                    for &e in &rw.wavelength.path.edges {
                        assert!(
                            !scenario.is_cut(e),
                            "k={k}: restored path crosses a cut fiber"
                        );
                    }
                }
            }
        }
    }
}

/// Availability-surface properties on random instances: cell
/// availability is monotone non-decreasing along the spare-budget axis
/// (budgets are allowances), and the whole surface renders byte-identically
/// at 1, 2 and 4 pool threads.
#[test]
fn availability_surface_is_monotone_and_thread_invariant() {
    use flexwan::core::planning::PlannerConfig;
    use flexwan::core::scenario::{demand_scenarios, scenario_suite, EngineConfig, ScenarioEngine};
    use flexwan::topo::cache::RouteCache;

    let mut rng = ChaCha8Rng::seed_from_u64(0xA00D);
    let mut evaluated = 0usize;
    for _case in 0..6 {
        let (g, ip) = random_instance(&mut rng);
        if ip.num_links() == 0 {
            continue;
        }
        let cfg = PlannerConfig {
            grid: SpectrumGrid::new(rng.gen_range(24u32..64)),
            k_paths: 2,
            ..PlannerConfig::default()
        };
        let suite = scenario_suite(&g, 2, 12, 6, 0xFEED);
        let demands = demand_scenarios(&ip, 1, 0.2, 0xFEED);
        let budgets = vec![0u32, 1, 3];
        let cache = RouteCache::new();
        let mut renders = Vec::new();
        for threads in [1usize, 2, 4] {
            let mut engine = ScenarioEngine::new(
                Scheme::FlexWan,
                &g,
                &ip,
                &cfg,
                &cache,
                EngineConfig {
                    spare_budgets: budgets.clone(),
                    threads,
                    ..EngineConfig::default()
                },
            );
            let surface = engine.evaluate(&suite, &demands);
            for cells in surface.cells.chunks(budgets.len()) {
                for w in cells.windows(2) {
                    assert!(
                        w[1].availability() >= w[0].availability(),
                        "availability dropped with a larger spare allowance"
                    );
                    assert!(
                        w[1].restored_gbps >= w[0].restored_gbps,
                        "restored Gbps dropped with a larger spare allowance"
                    );
                }
            }
            renders.push(surface.render());
        }
        assert_eq!(renders[0], renders[1], "1 vs 2 threads");
        assert_eq!(renders[0], renders[2], "1 vs 4 threads");
        evaluated += 1;
    }
    assert!(evaluated >= 3, "only {evaluated} instances evaluated");
}
