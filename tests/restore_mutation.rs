//! Cross-validation of restoration-by-mutation (the standing
//! [`PlanModel`] re-solved warm after a fiber cut) against from-scratch
//! builds, on every small instance of the validation suite:
//!
//! 1. the warm mutated re-solve must match a freshly built, cold-solved
//!    copy of the same mutated model **bit-for-bit** on objective and
//!    wavelength set;
//! 2. the mutated optimum must equal the from-scratch §8 restoration
//!    model (`restore::solve_exact`) run against the same exact plan.

use flexwan::core::planning::{Plan, PlanModel, PlannerConfig, SpectrumState};
use flexwan::core::restore::{one_fiber_scenarios, solve_restoration_exact};
use flexwan::core::{Scheme, Wavelength};
use flexwan::optical::spectrum::SpectrumGrid;
use flexwan::solver::SolveOptions;
use flexwan::topo::graph::Graph;
use flexwan::topo::ip::IpTopology;
use flexwan_util::rng::ChaCha8Rng;

/// Same 4-node topology family as `restoration_validation.rs`, but with
/// deliberately smaller spectrum grids: the restorable model enumerates
/// every single-fiber detour path, and exact B&B over the resulting
/// variable space has to stay fast in debug builds.
fn restoration_instance(seed: u64) -> (Graph, IpTopology, PlannerConfig) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut g = Graph::new();
    let a = g.add_node("a");
    let b = g.add_node("b");
    let c = g.add_node("c");
    let d = g.add_node("d");
    g.add_edge(a, b, rng.gen_range(100u32..700));
    g.add_edge(b, c, rng.gen_range(100u32..700));
    g.add_edge(c, d, rng.gen_range(100u32..700));
    g.add_edge(d, a, rng.gen_range(100u32..700));
    g.add_edge(a, c, rng.gen_range(300u32..1200));
    let mut ip = IpTopology::new();
    for _ in 0..rng.gen_range(1u32..=2) {
        let (src, dst) = match rng.gen_range(0u32..3) {
            0 => (a, b),
            1 => (a, c),
            _ => (b, d),
        };
        ip.add_link(src, dst, 100 * rng.gen_range(1u64..=4));
    }
    let cfg = PlannerConfig {
        grid: SpectrumGrid::new(rng.gen_range(10u32..14)),
        k_paths: 2,
        ..Default::default()
    };
    (g, ip, cfg)
}

fn opts() -> SolveOptions {
    SolveOptions {
        max_nodes: 50_000,
        ..Default::default()
    }
}

/// A canonical sort key for comparing wavelength *sets*.
fn wl_key(w: &Wavelength) -> (u32, usize, u32, u32, u32) {
    (
        w.link.0,
        w.path_index,
        w.format.data_rate_gbps,
        u32::from(w.format.spacing.pixels()),
        w.channel.start,
    )
}

fn sorted(mut ws: Vec<Wavelength>) -> Vec<Wavelength> {
    ws.sort_by_key(wl_key);
    ws
}

/// Warm mutated re-solve == freshly built, cold-solved mutated model,
/// bit-for-bit on objective and wavelength set.
#[test]
fn mutated_resolve_matches_from_scratch_build() {
    let opts = opts();
    let mut compared = 0u32;
    let mut warm_total = 0u64;
    for seed in 0..8u64 {
        let (g, ip, cfg) = restoration_instance(seed);
        let mut warm_pm = PlanModel::build_restorable(Scheme::FlexWan, &g, &ip, &cfg);
        let Some(plan) = warm_pm.solve(&opts) else {
            continue;
        };

        // From-scratch comparator: an independently built and solved
        // copy of the same model. Every mutation below is solved on it
        // *cold* (basis dropped first), while `warm_pm` re-solves warm
        // from its standing basis.
        let mut cold_pm = PlanModel::build_restorable(Scheme::FlexWan, &g, &ip, &cfg);
        let cold_plan = cold_pm.solve(&opts).expect("fresh build must re-plan");
        assert_eq!(
            cold_plan.objective.to_bits(),
            plan.objective.to_bits(),
            "seed {seed}: planning solves diverged"
        );

        let spares = vec![1u32; ip.links().len()];
        for scenario in one_fiber_scenarios(&g) {
            for extra in [&[][..], &spares[..]] {
                let warm = warm_pm
                    .restore_after_cut(&g, &scenario, extra, &opts)
                    .expect("mutated re-solve found no incumbent");

                cold_pm.drop_basis();
                let cold = cold_pm
                    .restore_after_cut(&g, &scenario, extra, &opts)
                    .expect("from-scratch mutated solve found no incumbent");

                assert_eq!(
                    warm.objective.to_bits(),
                    cold.objective.to_bits(),
                    "seed {seed} scenario {}: warm {} vs scratch {}",
                    scenario.id,
                    warm.objective,
                    cold.objective
                );
                assert_eq!(warm.restored_gbps, cold.restored_gbps);
                assert_eq!(warm.affected_gbps, cold.affected_gbps);
                assert_eq!(
                    sorted(warm.wavelengths.clone()),
                    sorted(cold.wavelengths.clone()),
                    "seed {seed} scenario {}: wavelength sets diverged",
                    scenario.id
                );
                warm_total += warm.stats.warm_solves;
                compared += 1;
            }
        }
    }
    assert!(compared >= 12, "only {compared} comparisons ran");
    assert!(
        warm_total > 0,
        "no mutated re-solve ever reused the standing basis"
    );
}

/// The mutated optimum equals the from-scratch §8 restoration model run
/// against the same exact plan, and satisfies the §8 invariants.
#[test]
fn mutation_agrees_with_exact_restoration_model() {
    let opts = opts();
    let mut compared = 0u32;
    for seed in 0..8u64 {
        let (g, ip, cfg) = restoration_instance(seed);
        // `build_restorable` guarantees the standing variable space
        // contains every banned-KSP restoration path, so the mutated
        // model's feasible set equals the from-scratch §8 model's.
        let mut pm = PlanModel::build_restorable(Scheme::FlexWan, &g, &ip, &cfg);
        let Some(exact_plan) = pm.solve(&opts) else {
            continue;
        };
        // `restore::solve_exact` only reads scheme + wavelengths; wrap the
        // exact plan in a `Plan` shell so both formulations restore the
        // *same* deployment.
        let shell = Plan {
            scheme: Scheme::FlexWan,
            wavelengths: exact_plan.wavelengths.clone(),
            unmet: Vec::new(),
            spectrum: SpectrumState::new(cfg.grid, g.num_edges()),
            candidate_routes: Vec::new(),
        };
        let spares = vec![1u32; ip.links().len()];
        for scenario in one_fiber_scenarios(&g) {
            for extra in [&[][..], &spares[..]] {
                let m = pm.restore_after_cut(&g, &scenario, extra, &opts).unwrap();
                let e = solve_restoration_exact(&shell, &g, &ip, &scenario, extra, &cfg, &opts)
                    .expect("exact restoration found no incumbent");
                assert_eq!(m.affected_gbps, e.affected_gbps, "seed {seed}");
                assert_eq!(
                    m.restored_gbps,
                    e.restored_gbps,
                    "seed {seed} scenario {} spares={}: mutation {} vs exact {}",
                    scenario.id,
                    !extra.is_empty(),
                    m.restored_gbps,
                    e.restored_gbps
                );
                // §8 invariants on the mutated solution itself.
                assert!(m.restored_gbps <= m.affected_gbps);
                for w in &m.wavelengths {
                    assert!(w.format.reach_km >= w.path.length_km);
                    for cut in &scenario.cuts {
                        assert!(!w.path.uses_edge(*cut));
                    }
                }
                compared += 1;
            }
        }
    }
    assert!(compared >= 12, "only {compared} comparisons ran");
}

/// Regression for 2-cut pin/ban ordering: a simultaneous two-fiber cut
/// taking down both the primary route and its preferred detour must ban
/// every crossing row in one batch *before* the re-solve (sequential
/// per-fiber mutation would strand the first cut's restoration on the
/// about-to-die detour). The surviving direct fiber is the only legal
/// restoration, warm and cold agree bit-for-bit, and the cut-slice
/// order does not matter.
#[test]
fn two_cut_ban_is_batched_and_order_independent() {
    let opts = opts();
    // Primary a-b-c (600 km), preferred detour a-d-c (700 km), direct
    // fallback a-c (900 km). Cutting {a-b, a-d} kills the primary AND
    // the preferred detour; only the direct fiber survives.
    let mut g = Graph::new();
    let a = g.add_node("a");
    let b = g.add_node("b");
    let c = g.add_node("c");
    let d = g.add_node("d");
    let e_ab = g.add_edge(a, b, 300);
    let _e_bc = g.add_edge(b, c, 300);
    let e_ad = g.add_edge(a, d, 350);
    let _e_dc = g.add_edge(d, c, 350);
    let e_ac = g.add_edge(a, c, 900);
    let mut ip = IpTopology::new();
    ip.add_link(a, c, 200);
    let cfg = PlannerConfig {
        grid: SpectrumGrid::new(12),
        k_paths: 2,
        ..Default::default()
    };

    let mut warm_pm = PlanModel::build_restorable(Scheme::FlexWan, &g, &ip, &cfg);
    warm_pm.solve(&opts).expect("baseline plan is feasible");
    let mut cold_pm = PlanModel::build_restorable(Scheme::FlexWan, &g, &ip, &cfg);
    cold_pm.solve(&opts).expect("baseline plan is feasible");

    let warm = warm_pm
        .restore_after_cuts(&g, &[e_ab, e_ad], &[], &opts)
        .expect("2-cut mutated re-solve found no incumbent");
    assert!(warm.affected_gbps > 0, "the 2-cut must hit the primary");
    assert_eq!(
        warm.restored_gbps, warm.affected_gbps,
        "the direct fiber restores everything"
    );
    for w in &warm.wavelengths {
        assert!(!w.path.uses_edge(e_ab), "restoration crossed cut a-b");
        assert!(!w.path.uses_edge(e_ad), "restoration crossed cut a-d");
        assert!(w.path.uses_edge(e_ac), "only the direct fiber survives");
    }

    cold_pm.drop_basis();
    let cold = cold_pm
        .restore_after_cuts(&g, &[e_ab, e_ad], &[], &opts)
        .expect("cold 2-cut mutated solve found no incumbent");
    assert_eq!(warm.objective.to_bits(), cold.objective.to_bits());
    assert_eq!(warm.restored_gbps, cold.restored_gbps);
    assert_eq!(
        sorted(warm.wavelengths.clone()),
        sorted(cold.wavelengths.clone())
    );

    // Slice order is irrelevant: cuts are canonicalized before the ban.
    let swapped = warm_pm
        .restore_after_cuts(&g, &[e_ad, e_ab], &[], &opts)
        .expect("swapped-order 2-cut re-solve found no incumbent");
    assert_eq!(warm.objective.to_bits(), swapped.objective.to_bits());
    assert_eq!(
        sorted(warm.wavelengths.clone()),
        sorted(swapped.wavelengths)
    );

    // The standing model is fully reverted: a later single-fiber cut
    // behaves as if the 2-cut drill never happened.
    let single = warm_pm
        .restore_after_cut(&g, &one_fiber_scenarios(&g)[0], &[], &opts)
        .expect("post-drill single-cut re-solve");
    cold_pm.drop_basis();
    let single_cold = cold_pm
        .restore_after_cut(&g, &one_fiber_scenarios(&g)[0], &[], &opts)
        .expect("post-drill cold single-cut re-solve");
    assert_eq!(single.objective.to_bits(), single_cold.objective.to_bits());
    assert_eq!(sorted(single.wavelengths), sorted(single_cold.wavelengths));
}
