//! Chaos tests for the restoration path: physical-plant faults (fiber
//! cuts, amplifier failures) mapped through the physim testbed into
//! restoration scenarios, and the telemetry→restoration orchestrator
//! driven against a faulted device plane.

use std::sync::Arc;

use flexwan::core::planning::{plan, PlannerConfig};
use flexwan::core::restore::restore;
use flexwan::core::Scheme;
use flexwan::ctrl::{
    physical_scenario, Controller, DeviceFaults, FaultInjector, FaultPlan, Orchestrator,
    PhysicalFault, TelemetrySim, TelemetryStore, TickOutcome,
};
use flexwan::optical::spectrum::SpectrumGrid;
use flexwan::optical::WssKind;
use flexwan::physim::testbed::Testbed;
use flexwan::topo::graph::Graph;
use flexwan::topo::ip::IpTopology;

/// Triangle world: one 300 Gbps IP link a–b with a detour via c.
fn world() -> (Graph, IpTopology, PlannerConfig) {
    let mut g = Graph::new();
    let a = g.add_node("a");
    let b = g.add_node("b");
    let c = g.add_node("c");
    g.add_edge(a, b, 600);
    g.add_edge(a, c, 600);
    g.add_edge(c, b, 600);
    let mut ip = IpTopology::new();
    ip.add_link(a, b, 300);
    let cfg = PlannerConfig {
        grid: SpectrumGrid::new(96),
        ..Default::default()
    };
    (g, ip, cfg)
}

#[test]
fn fiber_cut_drill_restores_around_the_cut() {
    let (g, ip, cfg) = world();
    let p = plan(Scheme::FlexWan, &g, &ip, &cfg);
    assert!(p.is_feasible());
    let tb = Testbed::default();
    let primary = p.wavelengths[0].path.edges[0];

    let scenario = physical_scenario(1, &[PhysicalFault::FiberCut(primary)], &g, &tb);
    assert!(scenario.is_cut(primary));
    let r = restore(&p, &g, &ip, &scenario, &[], &cfg);
    assert_eq!(r.affected_gbps, 300);
    assert_eq!(r.restored_gbps, 300, "FlexWAN revives the full link");
    for rw in &r.restored {
        assert!(
            !rw.wavelength.path.uses_edge(primary),
            "restoration avoids the cut"
        );
        assert!(rw.wavelength.format.reach_km >= rw.wavelength.path.length_km);
    }
}

#[test]
fn amplifier_failure_on_long_haul_cuts_but_metro_span_survives() {
    let mut g = Graph::new();
    let a = g.add_node("a");
    let b = g.add_node("b");
    let c = g.add_node("c");
    let metro = g.add_edge(a, b, 60); // single span: no inline EDFA
    let haul = g.add_edge(b, c, 900); // many spans
    let tb = Testbed::default();

    let s = physical_scenario(
        1,
        &[
            PhysicalFault::AmplifierFailure(metro),
            PhysicalFault::AmplifierFailure(haul),
        ],
        &g,
        &tb,
    );
    assert!(!s.is_cut(metro), "nothing to fail on a single-span fiber");
    assert!(s.is_cut(haul));

    // A drill against a plan using only the surviving metro fiber is a
    // no-op: the amplifier failure did not touch its traffic.
    let mut ip = IpTopology::new();
    ip.add_link(a, b, 100);
    let cfg = PlannerConfig {
        grid: SpectrumGrid::new(96),
        ..Default::default()
    };
    let p = plan(Scheme::FlexWan, &g, &ip, &cfg);
    let r = restore(&p, &g, &ip, &s, &[], &cfg);
    assert_eq!(r.affected_gbps, 0);
    assert_eq!(r.restored_gbps, 0);
}

#[test]
fn compound_physical_faults_deduplicate_cuts() {
    let (g, _, _) = world();
    let tb = Testbed::default();
    let e0 = g.edges()[0].id;
    let s = physical_scenario(
        3,
        &[
            PhysicalFault::FiberCut(e0),
            PhysicalFault::AmplifierFailure(e0), // 600 km: also cuts — same fiber
            PhysicalFault::FiberCut(g.edges()[1].id),
        ],
        &g,
        &tb,
    );
    assert_eq!(s.cuts.len(), 2, "one fiber, one cut entry");
}

#[test]
fn orchestrator_drill_succeeds_against_faulted_device_plane() {
    // The full closed loop — telemetry, cut detection, restoration,
    // atomic device configuration — with the device plane dropping and
    // delaying at a fixed seed. The controller's retry layer absorbs the
    // faults: the drill must land the restoration with zero rejections.
    let (g, ip, cfg) = world();
    let p = plan(Scheme::FlexWan, &g, &ip, &cfg);
    let primary = p.wavelengths[0].path.edges[0];

    let mut ctrl = Controller::build(&g, WssKind::PixelWise, cfg.grid);
    let injector = Arc::new(FaultInjector::new(FaultPlan::uniform(
        0xD411,
        DeviceFaults {
            drop_prob: 0.2,
            delay_reply_prob: 0.1,
            ..Default::default()
        },
    )));
    ctrl.arm_faults(injector.clone());

    let mut orch = Orchestrator::new(&g, &ip, p, cfg, Vec::new());
    let sim = TelemetrySim::new(&g);
    let mut store = TelemetryStore::new(30);

    for t in 0..3 {
        sim.tick(&mut store, t, &[]);
        assert_eq!(orch.tick(&store, &mut ctrl), TickOutcome::Quiet);
    }
    sim.tick(&mut store, 3, &[primary]);
    match orch.tick(&store, &mut ctrl) {
        TickOutcome::Restored {
            lost_gbps,
            revived_gbps,
            apply_rejections,
            ..
        } => {
            assert_eq!(lost_gbps, 300);
            assert_eq!(revived_gbps, 300);
            assert_eq!(apply_rejections, 0, "retries must absorb the chaos");
        }
        other => panic!("expected restoration, got {other:?}"),
    }
    assert_eq!(orch.live_restoration().len(), 1);
    assert!(!orch.live_restoration()[0].path.uses_edge(primary));
    // The chaos was real: the injector fired, the controller retried.
    let f = injector.stats();
    assert!(
        f.drops + f.delayed_replies > 0,
        "no faults fired at this seed"
    );
    assert!(ctrl.stats().retries > 0);
    // Journal survived the drill in order.
    let revs: Vec<u64> = ctrl
        .journal()
        .entries()
        .iter()
        .map(|e| e.revision)
        .collect();
    assert!(revs.windows(2).all(|w| w[0] < w[1]));

    // Repair retires the restoration cleanly, still under chaos.
    sim.tick(&mut store, 4, &[]);
    match orch.tick(&store, &mut ctrl) {
        TickOutcome::Repaired { retired, .. } => assert_eq!(retired, 1),
        other => panic!("expected repair, got {other:?}"),
    }
    assert!(orch.live_restoration().is_empty());
}

#[test]
fn orchestrator_drill_is_deterministic() {
    let run = || {
        let (g, ip, cfg) = world();
        let p = plan(Scheme::FlexWan, &g, &ip, &cfg);
        let primary = p.wavelengths[0].path.edges[0];
        let mut ctrl = Controller::build(&g, WssKind::PixelWise, cfg.grid);
        let injector = Arc::new(FaultInjector::new(FaultPlan::uniform(
            0xD411,
            DeviceFaults {
                drop_prob: 0.2,
                delay_reply_prob: 0.1,
                ..Default::default()
            },
        )));
        ctrl.arm_faults(injector.clone());
        let mut orch = Orchestrator::new(&g, &ip, p, cfg, Vec::new());
        let sim = TelemetrySim::new(&g);
        let mut store = TelemetryStore::new(30);
        sim.tick(&mut store, 0, &[]);
        let _ = orch.tick(&store, &mut ctrl);
        sim.tick(&mut store, 1, &[primary]);
        let _ = orch.tick(&store, &mut ctrl);
        (ctrl.stats().clone(), injector.stats())
    };
    assert_eq!(run(), run(), "same seed, same drill, same counters");
}
