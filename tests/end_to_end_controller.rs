//! End-to-end control-plane test: plan → centralized controller → device
//! plane → audit → fiber cut → detection → restoration → re-apply.
//! Exercises the whole §4 pipeline against live (simulated) multi-vendor
//! devices.

use flexwan::core::planning::{plan, PlannerConfig};
use flexwan::core::restore::{restore, FailureScenario};
use flexwan::core::Scheme;
use flexwan::ctrl::controller::Controller;
use flexwan::ctrl::datastream::{FiberCutDetector, TelemetrySim, TelemetryStore};
use flexwan::ctrl::ha::ControllerCluster;
use flexwan::optical::WssKind;
use flexwan::topo::graph::Graph;
use flexwan::topo::ip::IpTopology;

fn backbone() -> (Graph, IpTopology) {
    let mut g = Graph::new();
    let a = g.add_node("a");
    let b = g.add_node("b");
    let c = g.add_node("c");
    let d = g.add_node("d");
    g.add_edge(a, b, 120);
    g.add_edge(b, c, 180);
    g.add_edge(c, d, 90);
    g.add_edge(d, a, 300);
    g.add_edge(a, c, 450);
    let mut ip = IpTopology::new();
    ip.add_link(a, c, 800);
    ip.add_link(b, d, 400);
    ip.add_link(a, b, 600);
    (g, ip)
}

#[test]
fn full_lifecycle() {
    let (g, ip) = backbone();
    let cfg = PlannerConfig::default();

    // 1. Plan and deploy.
    let p = plan(Scheme::FlexWan, &g, &ip, &cfg);
    assert!(p.is_feasible());
    let mut ctrl = Controller::build(&g, WssKind::PixelWise, cfg.grid);
    let report = ctrl.apply_plan(&p, &g);
    assert!(report.is_clean(), "{:?}", report.rejections);
    assert!(ctrl.audit_plan(&p).is_empty());

    // 2. A fiber cut appears in telemetry.
    let victim = p.wavelengths[0].path.edges[0];
    let sim = TelemetrySim::new(&g);
    let mut store = TelemetryStore::new(30);
    for t in 0..5 {
        sim.tick(&mut store, t, &[]);
    }
    sim.tick(&mut store, 5, &[victim]);
    let detected = FiberCutDetector::default().scan(&store);
    assert_eq!(detected, vec![victim]);

    // 3. Restore and verify the revived wavelengths avoid the cut.
    let scenario = FailureScenario {
        id: 0,
        cuts: detected,
        probability: 1.0,
    };
    let r = restore(&p, &g, &ip, &scenario, &[], &cfg);
    assert!(r.affected_gbps > 0);
    assert!(
        r.restored_gbps > 0,
        "restoration found nothing on a ring topology"
    );
    for rw in &r.restored {
        assert!(!rw.wavelength.path.uses_edge(victim));
    }

    // 4. Push the restoration configs through a fresh controller (the
    //    restored channels coexist with surviving ones).
    let mut survived = p.clone();
    survived.wavelengths.retain(|w| !w.path.uses_edge(victim));
    survived
        .wavelengths
        .extend(r.restored.iter().map(|rw| rw.wavelength.clone()));
    let mut ctrl2 = Controller::build(&g, WssKind::PixelWise, cfg.grid);
    let report2 = ctrl2.apply_plan(&survived, &g);
    assert!(report2.is_clean(), "{:?}", report2.rejections);
    assert!(ctrl2.audit_plan(&survived).is_empty());
}

#[test]
fn controller_survives_replica_failure_mid_rollout() {
    // The §4.4 fault-tolerance story: operations keep flowing across a
    // primary failure, and the promoted replica holds the full log.
    let mut cluster = ControllerCluster::new(&["east", "west", "north"]);
    for _ in 0..10 {
        cluster.submit().unwrap();
    }
    for _ in 0..3 {
        cluster.heartbeat_round(&[1, 2]); // primary (0) goes dark
    }
    let (primary, rev) = cluster.submit().unwrap();
    assert_eq!(primary, 1);
    assert_eq!(rev, 11);
    assert_eq!(cluster.replicas()[1].log_len(), 11);
}
