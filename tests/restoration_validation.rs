//! Validates the greedy restorer against the exact §8 restoration MIP on
//! randomized small instances, and checks restoration invariants.

use flexwan::core::planning::{plan, PlannerConfig};
use flexwan::core::restore::{one_fiber_scenarios, restore, solve_restoration_exact};
use flexwan::core::Scheme;
use flexwan::optical::spectrum::SpectrumGrid;
use flexwan::solver::SolveOptions;
use flexwan::topo::graph::Graph;
use flexwan::topo::ip::IpTopology;
use flexwan_util::rng::ChaCha8Rng;

fn random_instance(seed: u64) -> (Graph, IpTopology, PlannerConfig) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut g = Graph::new();
    let a = g.add_node("a");
    let b = g.add_node("b");
    let c = g.add_node("c");
    let d = g.add_node("d");
    g.add_edge(a, b, rng.gen_range(100u32..700));
    g.add_edge(b, c, rng.gen_range(100u32..700));
    g.add_edge(c, d, rng.gen_range(100u32..700));
    g.add_edge(d, a, rng.gen_range(100u32..700));
    g.add_edge(a, c, rng.gen_range(300u32..1200));
    let mut ip = IpTopology::new();
    for _ in 0..rng.gen_range(1u32..=2) {
        let (src, dst) = match rng.gen_range(0u32..3) {
            0 => (a, b),
            1 => (a, c),
            _ => (b, d),
        };
        ip.add_link(src, dst, 100 * rng.gen_range(1u64..=4));
    }
    let cfg = PlannerConfig {
        grid: SpectrumGrid::new(rng.gen_range(14u32..22)),
        k_paths: 2,
        ..Default::default()
    };
    (g, ip, cfg)
}

#[test]
fn greedy_restoration_close_to_exact() {
    let opts = SolveOptions {
        max_nodes: 50_000,
        ..Default::default()
    };
    let mut compared = 0;
    for seed in 0..12u64 {
        let (g, ip, cfg) = random_instance(seed);
        let p = plan(Scheme::FlexWan, &g, &ip, &cfg);
        if !p.is_feasible() {
            continue;
        }
        for scenario in one_fiber_scenarios(&g) {
            let greedy = restore(&p, &g, &ip, &scenario, &[], &cfg);
            let Some(exact) = solve_restoration_exact(&p, &g, &ip, &scenario, &[], &cfg, &opts)
            else {
                continue;
            };
            assert_eq!(greedy.affected_gbps, exact.affected_gbps, "seed {seed}");
            // Greedy never exceeds the optimum and stays within 70 % of it
            // (it is usually equal on these instances).
            assert!(
                greedy.restored_gbps <= exact.restored_gbps,
                "seed {seed} scenario {}: greedy {} > exact {}",
                scenario.id,
                greedy.restored_gbps,
                exact.restored_gbps
            );
            if exact.restored_gbps > 0 {
                assert!(
                    greedy.restored_gbps as f64 >= 0.7 * exact.restored_gbps as f64,
                    "seed {seed} scenario {}: greedy {} far below exact {}",
                    scenario.id,
                    greedy.restored_gbps,
                    exact.restored_gbps
                );
            }
            compared += 1;
        }
    }
    assert!(compared >= 20, "only {compared} comparisons ran");
}

/// Exact-vs-greedy parity with non-zero `extra_spares`: the spare-pool
/// path of both restorers is exercised, greedy stays bounded by the
/// optimum, and granting spares never reduces the exact optimum.
#[test]
fn greedy_restoration_close_to_exact_with_spares() {
    let opts = SolveOptions {
        max_nodes: 50_000,
        ..Default::default()
    };
    let mut compared = 0;
    for seed in 0..8u64 {
        let (g, ip, cfg) = random_instance(seed);
        let p = plan(Scheme::FlexWan, &g, &ip, &cfg);
        if !p.is_feasible() {
            continue;
        }
        let spares = vec![1u32; ip.links().len()];
        for scenario in one_fiber_scenarios(&g) {
            let greedy = restore(&p, &g, &ip, &scenario, &spares, &cfg);
            let Some(exact) = solve_restoration_exact(&p, &g, &ip, &scenario, &spares, &cfg, &opts)
            else {
                continue;
            };
            let Some(plain) = solve_restoration_exact(&p, &g, &ip, &scenario, &[], &cfg, &opts)
            else {
                continue;
            };
            assert_eq!(greedy.affected_gbps, exact.affected_gbps, "seed {seed}");
            assert!(
                greedy.restored_gbps <= exact.restored_gbps,
                "seed {seed} scenario {}: greedy {} > exact {}",
                scenario.id,
                greedy.restored_gbps,
                exact.restored_gbps
            );
            assert!(
                exact.restored_gbps >= plain.restored_gbps,
                "seed {seed} scenario {}: extra spares reduced the optimum ({} < {})",
                scenario.id,
                exact.restored_gbps,
                plain.restored_gbps
            );
            if exact.restored_gbps > 0 {
                assert!(
                    greedy.restored_gbps as f64 >= 0.7 * exact.restored_gbps as f64,
                    "seed {seed} scenario {}: greedy {} far below exact {}",
                    scenario.id,
                    greedy.restored_gbps,
                    exact.restored_gbps
                );
            }
            compared += 1;
        }
    }
    assert!(compared >= 15, "only {compared} comparisons ran");
}

#[test]
fn restoration_invariants_hold() {
    for seed in 40..55u64 {
        let (g, ip, cfg) = random_instance(seed);
        let p = plan(Scheme::FlexWan, &g, &ip, &cfg);
        for scenario in one_fiber_scenarios(&g) {
            let r = restore(&p, &g, &ip, &scenario, &[], &cfg);
            // (7): never revive more than was lost.
            assert!(r.restored_gbps <= r.affected_gbps);
            for rw in &r.restored {
                // (2): reach covers the restoration path.
                assert!(rw.wavelength.format.reach_km >= rw.wavelength.path.length_km);
                // Restored paths avoid every cut fiber.
                for cut in &scenario.cuts {
                    assert!(!rw.wavelength.path.uses_edge(*cut));
                }
            }
            // (3): no overlapping channels on any fiber among surviving +
            // restored wavelengths.
            let mut all: Vec<(&flexwan::topo::Path, flexwan::optical::PixelRange)> = Vec::new();
            for w in &p.wavelengths {
                if !w.path.edges.iter().any(|e| scenario.cuts.contains(e)) {
                    all.push((&w.path, w.channel));
                }
            }
            for rw in &r.restored {
                all.push((&rw.wavelength.path, rw.wavelength.channel));
            }
            for e in g.edges() {
                let on_fiber: Vec<_> = all
                    .iter()
                    .filter(|(path, _)| path.uses_edge(e.id))
                    .collect();
                for (i, (_, c1)) in on_fiber.iter().enumerate() {
                    for (_, c2) in &on_fiber[i + 1..] {
                        assert!(!c1.overlaps(c2), "seed {seed}: overlap on fiber {:?}", e.id);
                    }
                }
            }
        }
    }
}
