//! Soak test for the always-on churn service (DESIGN.md §10): a long
//! deterministic stream of mixed events — demand deltas, fiber cuts,
//! repairs, telemetry drift — is delivered through the event-stream
//! fault injector (drops, duplicates, reorders, stale redeliveries) and
//! the service must
//!
//! 1. converge to the canonical state regardless of delivery faults,
//! 2. journal every ladder decision such that replaying the journal
//!    over the canonical log reproduces the live state **bit-for-bit**,
//! 3. take the warm-mutation path for simultaneous cuts (asserted via
//!    `solver_solves_total{start=warm}` — zero rebuilds), and
//! 4. land every deadline-blown tick on a documented ladder level,
//!    never panicking or stalling.
//!
//! Event count defaults small enough for debug builds; the CI release
//! soak raises it via `FLEXWAN_SOAK_EVENTS`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use flexwan::core::planning::PlannerConfig;
use flexwan::core::Scheme;
use flexwan::ctrl::faults::StreamFaults;
use flexwan::ctrl::service::{
    ChurnEvent, ChurnService, EventLog, SeqEvent, ServiceConfig, LADDER_HEURISTIC, LADDER_PROTECT,
    LADDER_WARM,
};
use flexwan::ctrl::{FaultInjector, FaultPlan};
use flexwan::obs::{Clock, Obs};
use flexwan::optical::spectrum::SpectrumGrid;
use flexwan::solver::SolveOptions;
use flexwan::topo::graph::{EdgeId, Graph};
use flexwan::topo::ip::{IpLinkId, IpTopology};

/// 4-node backbone with detour diversity: every single cut — and the
/// (0,1) double cut — leaves an alternate route for each IP link.
fn backbone() -> (Graph, IpTopology, PlannerConfig) {
    let mut g = Graph::new();
    let a = g.add_node("a");
    let b = g.add_node("b");
    let c = g.add_node("c");
    let d = g.add_node("d");
    g.add_edge(a, b, 400); // 0: on the a–c primary a–b–c (800 km)
    g.add_edge(b, c, 400); // 1: on the a–c primary
    g.add_edge(a, c, 900); // 2: the a–c detour (survives a 0+1 double cut)
    g.add_edge(c, d, 400); // 3
    g.add_edge(a, d, 900); // 4: the a–d primary, untouched by cuts of 0/1
    let mut ip = IpTopology::new();
    ip.add_link(a, c, 300);
    ip.add_link(a, d, 200);
    // Deliberately tiny spectrum grid: the restorable model enumerates
    // every single-fiber detour, and exact B&B over that variable space
    // has to stay fast in debug builds (same sizing rationale as
    // `restore_mutation.rs`).
    let cfg = PlannerConfig {
        grid: SpectrumGrid::new(12),
        k_paths: 2,
        ..Default::default()
    };
    (g, ip, cfg)
}

/// Deterministic split-mix generator for the event stream (the service
/// and injector consume their own seeded RNGs; the generator just needs
/// reproducibility).
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A deterministic mixed-churn event stream. Cuts come only from fibers
/// 0/1 (the a–c detour pair) so restoration always has work; every cut
/// is eventually repaired. Roughly one event in twelve is a
/// simultaneous-cut burst taking down both fibers in one event.
fn churn_stream(n: usize, seed: u64) -> Vec<ChurnEvent> {
    let mut mix = Mix(seed);
    let mut cut: Vec<EdgeId> = Vec::new();
    let mut drift = [0.0f64; 5];
    let mut events = Vec::with_capacity(n + 2);
    while events.len() < n {
        match mix.below(12) {
            // 50%: drift. The emitted per-fiber sum is bounded to ±9.5 dB
            // (a delta that would leave the band is flipped): the service
            // resets its accumulator on repair, so its view is a
            // difference of two in-band sums — strictly under the 20 dB
            // cut threshold no matter how long the stream runs.
            0..=4 => {
                let f = mix.below(5) as usize;
                let mut delta = if mix.below(2) == 0 { -0.5 } else { 0.4 };
                if (drift[f] + delta).abs() >= 9.5 {
                    delta = if delta < 0.0 { 0.4 } else { -0.5 };
                }
                drift[f] += delta;
                events.push(ChurnEvent::TelemetryDrift {
                    fiber: EdgeId(f as u32),
                    delta_db: delta,
                });
            }
            // 20%: demand resize (multiples of 100 Gbps, small jumps).
            5 | 6 => events.push(ChurnEvent::DemandDelta {
                link: IpLinkId(mix.below(2) as u32),
                demand_gbps: 100 * (2 + mix.below(2)),
            }),
            // 20%: cut one of fibers {0, 1} not already dark.
            7 | 8 => {
                let f = EdgeId(mix.below(2) as u32);
                if !cut.contains(&f) {
                    cut.push(f);
                    events.push(ChurnEvent::FiberCut(f));
                }
            }
            // ~8%: a shared-risk burst — both fibers go dark in ONE
            // event (only when both are currently up).
            9 => {
                if cut.is_empty() {
                    cut.push(EdgeId(0));
                    cut.push(EdgeId(1));
                    events.push(ChurnEvent::SimultaneousCuts(vec![EdgeId(0), EdgeId(1)]));
                }
            }
            // ~17%: repair the oldest dark fiber.
            _ => {
                if !cut.is_empty() {
                    events.push(ChurnEvent::FiberRepair(cut.remove(0)));
                }
            }
        }
    }
    for f in cut {
        events.push(ChurnEvent::FiberRepair(f));
    }
    events
}

fn soak_events() -> usize {
    std::env::var("FLEXWAN_SOAK_EVENTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(60)
}

/// The headline soak: thousands of mixed events (in release; a bounded
/// slice in debug) through a faulty transport. Live state must equal
/// the journal roll-forward bit-for-bit, and the faulty delivery must
/// converge to the same state as a clean one.
#[test]
fn soak_faulty_delivery_replays_bit_for_bit() {
    let (g, ip, cfg) = backbone();
    let svc_cfg = ServiceConfig::default();
    let mut live =
        ChurnService::new(&g, &ip, Scheme::FlexWan, cfg.clone(), svc_cfg.clone()).unwrap();
    live.set_obs(Obs::new());

    let events = churn_stream(soak_events(), 7);
    let mut log = EventLog::new();
    let stamped: Vec<SeqEvent> = events.into_iter().map(|e| log.append(e)).collect();

    let injector = FaultInjector::new(
        FaultPlan {
            seed: 99,
            ..FaultPlan::none()
        }
        .with_stream(StreamFaults {
            drop_prob: 0.10,
            duplicate_prob: 0.10,
            reorder_prob: 0.10,
            stale_prob: 0.05,
        }),
    );

    for batch in stamped.chunks(5) {
        let perturbed = injector.perturb_stream(batch);
        let rep = live.deliver(&log, &perturbed);
        assert!(!rep.deadline_blown, "budget is unlimited here");
        assert!(rep.restore_level <= LADDER_PROTECT, "undocumented level");
    }
    // A lossy transport can eat the tail outright; flush applies it.
    live.flush(&log);

    let fstats = injector.stats();
    assert!(fstats.events_dropped > 0, "streak of luck — raise N");
    assert!(fstats.events_duplicated > 0);
    assert_eq!(live.state().next_seq, log.len(), "no event left behind");
    assert!(live.stats().gap_fills > 0, "drops were healed from the log");
    assert!(live.stats().duplicates_ignored > 0);
    assert!(live.active_cuts().is_empty(), "stream repairs every cut");

    // Clean-channel control: same canonical log, no faults, different
    // batching — the controlled state must be identical.
    let mut clean =
        ChurnService::new(&g, &ip, Scheme::FlexWan, cfg.clone(), svc_cfg.clone()).unwrap();
    for batch in stamped.chunks(3) {
        clean.deliver(&log, batch);
    }
    let live_state = live.state();
    let clean_state = clean.state();
    // Tick cadence (and hence the intermediate solve trajectory)
    // legitimately differs between transports; the converged controlled
    // state must not.
    assert_eq!(live_state.next_seq, clean_state.next_seq);
    assert_eq!(live_state.demands, clean_state.demands);
    assert_eq!(live_state.active_cuts, clean_state.active_cuts);
    assert_eq!(live_state.drift_db, clean_state.drift_db);
    assert_eq!(live_state.restoration, clean_state.restoration);
    assert_eq!(
        live_state.baseline_objective.to_bits(),
        clean_state.baseline_objective.to_bits(),
        "faulty delivery converged to a different plan cost"
    );

    // Journal roll-forward: bit-for-bit equality, including the JSON
    // encoding (the strongest equality we can state).
    let replayed =
        ChurnService::replay(&g, &ip, Scheme::FlexWan, cfg, svc_cfg, &log, live.journal()).unwrap();
    assert_eq!(replayed.state(), live.state());
    assert_eq!(
        replayed.state().canonical_json(),
        live.state().canonical_json(),
        "journal replay is not bit-identical"
    );
}

/// Simultaneous-cut bursts through a faulty transport: the multi-fiber
/// [`ChurnEvent::SimultaneousCuts`] events coalesce into the same
/// single-tick multi-cut restoration as per-fiber cuts, the journal
/// roll-forward reproduces the live state bit-for-bit, and every tick's
/// ladder decision lands in the per-level SLO counters (reported by
/// `slo_json`).
#[test]
fn soak_bursts_replay_and_record_ladder_slos() {
    let (g, ip, cfg) = backbone();
    let svc_cfg = ServiceConfig::default();
    let mut live =
        ChurnService::new(&g, &ip, Scheme::FlexWan, cfg.clone(), svc_cfg.clone()).unwrap();
    live.set_obs(Obs::new());

    let events = churn_stream(soak_events(), 21);
    assert!(
        events
            .iter()
            .any(|e| matches!(e, ChurnEvent::SimultaneousCuts(_))),
        "stream carries no burst — change the seed"
    );
    let mut log = EventLog::new();
    let stamped: Vec<SeqEvent> = events.into_iter().map(|e| log.append(e)).collect();

    let injector = FaultInjector::new(
        FaultPlan {
            seed: 4242,
            ..FaultPlan::none()
        }
        .with_stream(StreamFaults {
            drop_prob: 0.10,
            duplicate_prob: 0.10,
            reorder_prob: 0.10,
            stale_prob: 0.05,
        }),
    );
    for batch in stamped.chunks(4) {
        let perturbed = injector.perturb_stream(batch);
        let rep = live.deliver(&log, &perturbed);
        assert!(rep.restore_level <= LADDER_PROTECT, "undocumented level");
    }
    live.flush(&log);
    assert_eq!(live.state().next_seq, log.len(), "no event left behind");
    assert!(live.active_cuts().is_empty(), "stream repairs every cut");

    // Per-level SLOs: every tick is accounted to exactly one rung, and
    // the counters surface in the SLO report.
    let stats = live.stats();
    let level_total: u64 = stats.level_ticks.iter().sum();
    assert_eq!(
        level_total,
        live.state().tick,
        "a tick escaped the ladder SLOs"
    );
    assert!(
        stats.level_ticks[LADDER_WARM as usize] > 0,
        "no tick ever took the warm rung"
    );
    let slo = live.slo_json();
    for key in ["ticks_level0", "ticks_level1", "ticks_level2"] {
        assert!(slo.contains(key), "slo_json lost {key}: {slo}");
    }

    // Journal roll-forward over the burst-bearing log: bit-for-bit.
    let replayed =
        ChurnService::replay(&g, &ip, Scheme::FlexWan, cfg, svc_cfg, &log, live.journal()).unwrap();
    assert_eq!(replayed.state(), live.state());
    assert_eq!(
        replayed.state().canonical_json(),
        live.state().canonical_json(),
        "journal replay is not bit-identical"
    );
}

/// Simultaneous cuts must take the warm-mutation path of the standing
/// model — banned-path columns are generated on demand, the model is
/// never rebuilt — observable as warm solver starts and a zero rebuild
/// count.
#[test]
fn simultaneous_cuts_take_the_mutation_path() {
    let (g, ip, cfg) = backbone();
    let mut svc =
        ChurnService::new(&g, &ip, Scheme::FlexWan, cfg, ServiceConfig::default()).unwrap();
    let obs = Obs::new();
    svc.set_obs(obs.clone());
    let mut log = EventLog::new();

    let e0 = log.append(ChurnEvent::FiberCut(EdgeId(0)));
    let r0 = svc.deliver(&log, &[e0]);
    assert_eq!(r0.restore_level, LADDER_WARM);

    // Second cut while the first is still dark: the standing model is
    // mutated again (columns for the double-cut scenario appear on
    // demand), not rebuilt.
    let e1 = log.append(ChurnEvent::FiberCut(EdgeId(1)));
    let r1 = svc.deliver(&log, &[e1]);
    assert_eq!(r1.restore_level, LADDER_WARM);
    assert!(!r1.rebuilt);
    assert_eq!(svc.stats().rebuilds, 0, "mutation path must not rebuild");
    assert!(svc.stats().warm_mutations >= 2);

    let warm = obs
        .registry()
        .counter_with("solver_solves_total", &[("start", "warm")])
        .get();
    assert!(warm > 0, "restoration re-solves must start warm");
    let orchestrated = obs.registry().counter("churn_events_applied_total").get();
    assert_eq!(orchestrated, 2);

    // Both IP links still terminate on a — with fibers 0 and 1 dark the
    // a–c link rides its pre-enumerated direct detour; capacity comes
    // back.
    assert!(r1.restored_gbps > 0, "double cut restored nothing");
}

/// A clock that jumps a fixed amount on every read: any tick measured
/// with it takes "too long", deterministically.
#[derive(Debug)]
struct SteppingClock {
    now: AtomicU64,
    step: u64,
}

impl Clock for SteppingClock {
    fn now_ns(&self) -> u64 {
        self.now.fetch_add(self.step, Ordering::Relaxed) + self.step
    }
}

/// Deadline pressure walks the documented ladder: a blown budget lands
/// the tick on the 1+1 protection rung (level 2), the journal records
/// the blown deadline, and — crucially — replaying that journal without
/// any clock still reproduces the state bit-for-bit.
#[test]
fn deadline_blown_lands_on_documented_ladder_level() {
    let (g, ip, cfg) = backbone();
    let svc_cfg = ServiceConfig {
        tick_budget_ns: 1,
        ..ServiceConfig::default()
    };
    let mut svc =
        ChurnService::new(&g, &ip, Scheme::FlexWan, cfg.clone(), svc_cfg.clone()).unwrap();
    // Every clock read advances 10 ms — the 1 ns budget is always blown.
    svc.set_obs(Obs::with_clock(Arc::new(SteppingClock {
        now: AtomicU64::new(0),
        step: 10_000_000,
    })));

    let mut log = EventLog::new();
    let e0 = log.append(ChurnEvent::FiberCut(EdgeId(0)));
    let rep = svc.deliver(&log, &[e0]);
    assert!(rep.deadline_blown);
    assert_eq!(
        rep.restore_level, LADDER_PROTECT,
        "blown budget must land on the protection rung"
    );
    assert!(svc.state().protection_active);
    assert!(
        svc.live_restoration().is_empty(),
        "level 2 computes nothing"
    );
    assert_eq!(svc.stats().level_ticks[LADDER_PROTECT as usize], 1);
    let last = svc.journal().last().unwrap();
    assert!(last.deadline_blown, "the journal must record the decision");

    // Lift the pressure: the next tick still starts degraded
    // (backpressure), the one after returns to the warm path and the
    // MIP restoration replaces the protection fallback.
    svc.set_tick_budget_ns(u64::MAX);
    for _ in 0..2 {
        let ev = log.append(ChurnEvent::TelemetryDrift {
            fiber: EdgeId(3),
            delta_db: -0.1,
        });
        svc.deliver(&log, &[ev]);
    }
    let final_rep = svc.journal().last().unwrap();
    assert_eq!(final_rep.restore_level, LADDER_WARM, "service recovered");
    assert!(!svc.state().protection_active);
    assert!(!svc.live_restoration().is_empty());

    // The nondeterministic part (wall-clock pressure) is journaled, so
    // a clock-free replay still lands on the same bits.
    let replayed =
        ChurnService::replay(&g, &ip, Scheme::FlexWan, cfg, svc_cfg, &log, svc.journal()).unwrap();
    assert_eq!(
        replayed.state().canonical_json(),
        svc.state().canonical_json()
    );
}

/// A wedged solver (zero branch-and-bound nodes) must degrade to the
/// heuristic rung — capacity still comes back — and never panic or
/// stall the loop.
#[test]
fn wedged_solver_degrades_but_keeps_restoring() {
    let (g, ip, cfg) = backbone();
    let mut svc =
        ChurnService::new(&g, &ip, Scheme::FlexWan, cfg, ServiceConfig::default()).unwrap();
    svc.set_solve_options(SolveOptions {
        max_nodes: 0,
        ..SolveOptions::default()
    });
    let mut log = EventLog::new();
    let e0 = log.append(ChurnEvent::FiberCut(EdgeId(0)));
    let rep = svc.deliver(&log, &[e0]);
    assert_eq!(rep.restore_level, LADDER_HEURISTIC);
    assert!(rep.restored_gbps > 0, "heuristic rung restored capacity");

    // The loop keeps running ticks after the failure.
    let e1 = log.append(ChurnEvent::FiberRepair(EdgeId(0)));
    svc.deliver(&log, &[e1]);
    assert!(svc.active_cuts().is_empty());
    assert!(svc.live_restoration().is_empty());
}
