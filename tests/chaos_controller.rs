//! Chaos tests for the self-healing control plane: seeded fault injection
//! at the session boundary, circuit breakers, journal roll-forward, and
//! scripted cluster failures. Every test replays bit-identically — the
//! injector's RNG is consumed in the controller's (single-threaded)
//! request order.

use std::collections::HashMap;
use std::sync::Arc;

use flexwan::core::planning::{plan, Plan, PlannerConfig};
use flexwan::core::Scheme;
use flexwan::ctrl::datastream::TelemetrySample;
use flexwan::ctrl::ha::{ClusterError, ControllerCluster, HEARTBEAT_TOLERANCE};
use flexwan::ctrl::issues::ConfiguredChannel;
use flexwan::ctrl::model::Vendor;
use flexwan::ctrl::{
    find_conflicts, find_inconsistencies, BreakerState, ClusterFaultSchedule, Controller,
    CtrlStats, DeviceFaults, DeviceId, FaultInjector, FaultPlan, FaultStats, Hardware,
    Orchestrator, TelemetrySim, TelemetryStore, TickOutcome,
};
use flexwan::optical::spectrum::{PixelRange, SpectrumGrid};
use flexwan::optical::WssKind;
use flexwan::topo::graph::{Graph, NodeId};
use flexwan::topo::ip::IpTopology;

/// The 4-node drill backbone (same shape as the `chaos_drill` bench):
/// link a–c routes a–b–c (350 km < the 500 km direct fiber), so ROADM b
/// carries express configuration.
fn backbone() -> (Graph, IpTopology, PlannerConfig) {
    let mut g = Graph::new();
    let a = g.add_node("a");
    let b = g.add_node("b");
    let c = g.add_node("c");
    let d = g.add_node("d");
    g.add_edge(a, b, 150);
    g.add_edge(b, c, 200);
    g.add_edge(c, d, 250);
    g.add_edge(a, c, 500);
    g.add_edge(b, d, 450);
    let mut ip = IpTopology::new();
    ip.add_link(a, c, 600);
    ip.add_link(a, b, 400);
    ip.add_link(b, d, 500);
    let cfg = PlannerConfig {
        grid: SpectrumGrid::new(96),
        ..Default::default()
    };
    (g, ip, cfg)
}

/// Reads every MUX port and ROADM degree back from the live device plane:
/// the passbands actually in effect per site.
fn live_passbands(ctrl: &Controller) -> HashMap<NodeId, Vec<PixelRange>> {
    let mut at: HashMap<NodeId, Vec<PixelRange>> = HashMap::new();
    for id in (0..ctrl.devmgr.len() as u32).map(DeviceId) {
        let Ok(state) = ctrl.devmgr.device(id).session.get_state() else {
            continue;
        };
        let site = state.descriptor.site;
        match state.hardware {
            Hardware::Mux(m) => {
                let mut port = 0u16;
                while let Ok(pb) = m.passband(port) {
                    if let Some(r) = pb {
                        at.entry(site).or_default().push(r);
                    }
                    port += 1;
                }
            }
            Hardware::Roadm(r) => {
                let mut deg = 0u16;
                while let Ok(pbs) = r.passbands(deg) {
                    at.entry(site).or_default().extend(pbs.iter().copied());
                    deg += 1;
                }
            }
            _ => {}
        }
    }
    at
}

/// The plan's wavelengths as configured channels (for the issue finders).
fn channels_of(p: &Plan) -> Vec<ConfiguredChannel> {
    p.wavelengths
        .iter()
        .map(|w| ConfiguredChannel {
            path: w.path.clone(),
            channel: w.channel,
            vendor: Vendor::ALL[0],
        })
        .collect()
}

/// One full seeded chaos run: mixed drops, delayed replies, a rejecting
/// boot on one MUX, and one device crash. Returns everything a
/// determinism comparison needs.
fn chaos_run(seed: u64) -> (bool, usize, Vec<DeviceId>, CtrlStats, FaultStats, Vec<u64>) {
    let (g, ip, cfg) = backbone();
    let p = plan(Scheme::FlexWan, &g, &ip, &cfg);
    assert!(p.is_feasible());
    let mut ctrl = Controller::build(&g, WssKind::PixelWise, cfg.grid);
    let mixed = DeviceFaults {
        drop_prob: 0.15,
        delay_reply_prob: 0.15,
        ..Default::default()
    };
    let fault_plan = FaultPlan::uniform(seed, mixed.clone())
        // MUX at site a boots slow: its first two edit-configs bounce.
        .device(
            DeviceId(0),
            DeviceFaults {
                reject_first: 2,
                ..mixed.clone()
            },
        )
        // ROADM at site b crashes on its first express edit (link a–c
        // routes a–b–c, so the edit definitely arrives).
        .device(
            DeviceId(3),
            DeviceFaults {
                crash_after: Some(0),
                ..mixed
            },
        );
    let injector = Arc::new(FaultInjector::new(fault_plan));
    ctrl.arm_faults(injector.clone());

    let _ = ctrl.apply_plan(&p, &g);
    let report = ctrl.converge(&p, 64);

    // Invariants under fault: audited clean, no conflicts, no
    // inconsistencies against the live device state. The forensic reads
    // below must see the plane as it is, so lift the faults first
    // (convergence itself ran entirely under fire).
    injector.lift();
    assert!(report.converged, "seed {seed}: did not converge");
    assert!(
        ctrl.audit_plan(&p).is_empty(),
        "seed {seed}: audit findings"
    );
    let channels = channels_of(&p);
    assert!(
        find_conflicts(&channels).is_empty(),
        "seed {seed}: conflicts"
    );
    assert!(
        find_inconsistencies(&channels, &live_passbands(&ctrl)).is_empty(),
        "seed {seed}: inconsistencies"
    );
    // No journal loss: revisions strictly increasing, and every device's
    // journaled latest configuration is actually in effect on the device.
    // (Revision numbers may skew under read-repair — the journal stamps
    // the retry's revision while the device applied an earlier attempt —
    // so the invariant is about configuration *content*.)
    let revisions: Vec<u64> = ctrl
        .journal()
        .entries()
        .iter()
        .map(|e| e.revision)
        .collect();
    assert!(
        revisions.windows(2).all(|w| w[0] < w[1]),
        "journal out of order"
    );
    for e in ctrl.journal().entries() {
        let state = ctrl
            .devmgr
            .device(e.device)
            .session
            .get_state()
            .expect("converged plane");
        let latest = ctrl.journal().latest(e.device).unwrap();
        assert!(
            flexwan::ctrl::config_in_effect(&state, &latest.config),
            "seed {seed}: device {:?} lost journaled config {:?}",
            e.device,
            latest.config
        );
    }
    let stats = ctrl.stats().clone();
    (
        report.converged,
        report.passes,
        report.restarted,
        stats,
        injector.stats(),
        revisions,
    )
}

#[test]
fn seeded_mixed_faults_converge_deterministically() {
    let first = chaos_run(0xC4A05);
    let second = chaos_run(0xC4A05);
    assert_eq!(first, second, "same seed must replay bit-identically");

    let (_, _, restarted, stats, faults, _) = first;
    // The scripted faults actually fired and were healed.
    assert_eq!(faults.crashes, 1, "the one-shot crash fired");
    assert!(faults.rejects >= 2, "the rejecting boot fired");
    assert!(
        faults.drops + faults.delayed_replies > 0,
        "mixed faults fired"
    );
    assert!(stats.retries > 0, "faults forced retries");
    assert!(
        stats.devices_restarted >= 1,
        "the crashed ROADM was replaced"
    );
    assert!(restarted.contains(&DeviceId(3)));
}

#[test]
fn different_seeds_are_still_healed() {
    for seed in [1u64, 2, 3] {
        let (converged, ..) = chaos_run(seed);
        assert!(converged);
    }
}

#[test]
fn empty_fault_plan_means_zero_retries() {
    let (g, ip, cfg) = backbone();
    let p = plan(Scheme::FlexWan, &g, &ip, &cfg);
    let mut ctrl = Controller::build(&g, WssKind::PixelWise, cfg.grid);
    let injector = Arc::new(FaultInjector::new(FaultPlan::none()));
    ctrl.arm_faults(injector.clone());
    assert!(ctrl.apply_plan(&p, &g).is_clean());
    let report = ctrl.converge(&p, 8);
    assert!(report.converged);
    assert_eq!(report.passes, 1, "a healthy plane converges in one pass");
    assert_eq!(report.repaired, 0);
    let s = ctrl.stats();
    assert_eq!(s.retries, 0, "no faults, no retries");
    assert_eq!(s.read_repairs, 0);
    assert_eq!(s.breaker_trips, 0);
    assert_eq!(s.devices_restarted, 0);
    let f = injector.stats();
    assert_eq!(
        f.drops + f.delayed_replies + f.rejects + f.crashes + f.stale_reads,
        0
    );
}

#[test]
fn total_blackout_trips_breakers_and_heals_after_lift() {
    let (g, ip, cfg) = backbone();
    let p = plan(Scheme::FlexWan, &g, &ip, &cfg);
    let mut ctrl = Controller::build(&g, WssKind::PixelWise, cfg.grid);
    let injector = Arc::new(FaultInjector::new(FaultPlan::uniform(
        11,
        DeviceFaults {
            drop_prob: 1.0,
            ..Default::default()
        },
    )));
    ctrl.arm_faults(injector.clone());

    let report = ctrl.apply_plan(&p, &g);
    assert!(!report.is_clean(), "nothing gets through a total blackout");
    let mid = ctrl.converge(&p, 2);
    assert!(!mid.converged, "cannot converge while every request drops");
    assert!(!ctrl.quarantined().is_empty(), "breakers opened");
    assert!(ctrl.stats().breaker_trips > 0);

    // The outage clears; the self-healing loop finishes the job.
    injector.lift();
    let after = ctrl.converge(&p, 64);
    assert!(after.converged, "plane heals once faults lift");
    assert!(ctrl.quarantined().is_empty());
    assert!(ctrl.audit_plan(&p).is_empty());
}

#[test]
fn applied_but_unacknowledged_config_converges_without_repair() {
    // Every reply from ROADM b is delayed past the session timeout: the
    // express lands on the device but the controller never hears the ack.
    // Convergence must discover the config is already in effect instead of
    // re-pushing (re-pushing a ROADM express self-conflicts).
    let (g, ip, cfg) = backbone();
    let p = plan(Scheme::FlexWan, &g, &ip, &cfg);
    let roadm_b = DeviceId(3);
    let mut ctrl = Controller::build(&g, WssKind::PixelWise, cfg.grid);
    let injector = Arc::new(FaultInjector::new(FaultPlan::none().device(
        roadm_b,
        DeviceFaults {
            delay_reply_prob: 1.0,
            ..Default::default()
        },
    )));
    ctrl.arm_faults(injector.clone());

    let report = ctrl.apply_plan(&p, &g);
    assert!(!report.is_clean(), "acks to ROADM b are all lost");
    assert!(injector.stats().delayed_replies > 0);

    injector.lift();
    let after = ctrl.converge(&p, 8);
    assert!(after.converged);
    assert_eq!(
        after.repaired, 0,
        "the express was already in effect: nothing to re-push"
    );
    assert!(ctrl.audit_plan(&p).is_empty());
}

#[test]
fn breaker_fast_fails_while_open() {
    let (g, ip, cfg) = backbone();
    let p = plan(Scheme::FlexWan, &g, &ip, &cfg);
    let mut ctrl = Controller::build(&g, WssKind::PixelWise, cfg.grid);
    let mux_a = DeviceId(0);
    let injector = Arc::new(FaultInjector::new(FaultPlan::none().device(
        mux_a,
        DeviceFaults {
            drop_prob: 1.0,
            ..Default::default()
        },
    )));
    ctrl.arm_faults(injector);
    assert_eq!(ctrl.breaker_state(mux_a), BreakerState::Closed);

    // Two apply passes accumulate enough consecutive failed sends to MUX a
    // to cross BREAKER_THRESHOLD (each pass sends it a port per wavelength
    // terminating at site a).
    let _ = ctrl.apply_plan(&p, &g);
    let _ = ctrl.apply_plan(&p, &g);
    assert_eq!(
        ctrl.breaker_state(mux_a),
        BreakerState::Open,
        "persistent failure opens"
    );
    assert_eq!(ctrl.quarantined(), vec![mux_a]);
    let sends_before = ctrl.stats().sends;
    let retries_before = ctrl.stats().retries;
    // Another apply: sends to the quarantined MUX fail fast, no retries.
    let _ = ctrl.apply_plan(&p, &g);
    assert!(ctrl.stats().sends > sends_before);
    let new_retries = ctrl.stats().retries - retries_before;
    // Retries happened only against healthy devices (none are faulted).
    assert_eq!(
        new_retries, 0,
        "open breaker must fast-fail without retrying"
    );
}

// ---- Cluster-level chaos: heartbeat loss and region partitions ----

#[test]
fn failover_needs_exactly_heartbeat_tolerance_misses() {
    let mut c = ControllerCluster::new(&["east", "west", "north"]);
    let sched = ClusterFaultSchedule::new().silence(0, 0, HEARTBEAT_TOLERANCE as usize);
    for round in 0..(HEARTBEAT_TOLERANCE as usize - 1) {
        c.heartbeat_round_faulted(round, &sched);
        assert_eq!(
            c.primary(),
            Ok(0),
            "tolerance not yet exhausted at round {round}"
        );
    }
    c.heartbeat_round_faulted(HEARTBEAT_TOLERANCE as usize - 1, &sched);
    assert_eq!(
        c.primary(),
        Ok(1),
        "exactly {HEARTBEAT_TOLERANCE} misses fail over"
    );
}

#[test]
fn promoted_backup_carries_full_log_across_failover() {
    let mut c = ControllerCluster::new(&["east", "west", "north"]);
    for _ in 0..5 {
        c.submit().unwrap();
    }
    let sched = ClusterFaultSchedule::new().silence(0, 0, 10);
    for round in 0..HEARTBEAT_TOLERANCE as usize {
        c.heartbeat_round_faulted(round, &sched);
    }
    assert_eq!(c.primary(), Ok(1));
    for _ in 0..3 {
        c.submit().unwrap();
    }
    // No revision was lost in the failover: the promoted backup holds all
    // 8, and the next revision continues the sequence.
    assert_eq!(c.replicas()[1].log_len(), 8);
    let (_, rev) = c.submit().unwrap();
    assert_eq!(rev, 9);
    // The silenced ex-primary rejoins and catches the full log up.
    c.heartbeat_round_faulted(10, &sched);
    assert_eq!(c.replicas()[0].log_len(), 9);
    assert_eq!(c.primary(), Ok(0));
}

#[test]
fn region_partition_fails_over_and_heals() {
    let mut c = ControllerCluster::new(&["east", "east", "west"]);
    let sched = ClusterFaultSchedule::new().partition("east", 0, HEARTBEAT_TOLERANCE as usize);
    c.submit().unwrap();
    for round in 0..HEARTBEAT_TOLERANCE as usize {
        c.heartbeat_round_faulted(round, &sched);
    }
    // Both east replicas are gone; the west replica is primary.
    assert_eq!(c.primary(), Ok(2));
    c.submit().unwrap();
    // Partition heals: east rejoins with the full log, lowest id leads.
    c.heartbeat_round_faulted(HEARTBEAT_TOLERANCE as usize, &sched);
    assert_eq!(c.primary(), Ok(0));
    assert_eq!(c.replicas()[0].log_len(), 2);
}

#[test]
fn losing_every_region_is_a_hard_error() {
    let mut c = ControllerCluster::new(&["east", "west"]);
    let sched = ClusterFaultSchedule::new()
        .partition("east", 0, HEARTBEAT_TOLERANCE as usize)
        .partition("west", 0, HEARTBEAT_TOLERANCE as usize);
    for round in 0..HEARTBEAT_TOLERANCE as usize {
        c.heartbeat_round_faulted(round, &sched);
    }
    assert_eq!(c.primary(), Err(ClusterError::NoHealthyReplica));
    assert!(c.submit().is_err());
}

// ---------------------------------------------------------------------------
// Orchestrator-tick idempotence under faulty telemetry delivery: the
// store drops duplicate and stale samples instead of asserting, so the
// closed loop never double-restores a cut and never un-restores one on
// the strength of old data.
// ---------------------------------------------------------------------------

/// Shared setup: plan the backbone, build the device plane, return the
/// closed-loop pieces plus the first planned fiber (the cut target).
fn closed_loop<'a>(
    g: &'a Graph,
    ip: &'a IpTopology,
    cfg: &PlannerConfig,
) -> (
    Controller,
    Orchestrator<'a>,
    TelemetryStore,
    flexwan::topo::graph::EdgeId,
) {
    let p = plan(Scheme::FlexWan, g, ip, cfg);
    let primary = p.wavelengths[0].path.edges[0];
    let ctrl = Controller::build(g, WssKind::PixelWise, cfg.grid);
    let orch = Orchestrator::new(g, ip, p, cfg.clone(), Vec::new());
    let store = TelemetryStore::new(30);
    (ctrl, orch, store, primary)
}

#[test]
fn duplicate_cut_telemetry_never_double_restores() {
    let (g, ip, cfg) = backbone();
    let (mut ctrl, mut orch, mut store, primary) = closed_loop(&g, &ip, &cfg);
    let sim = TelemetrySim::new(&g);

    sim.tick(&mut store, 1, &[]);
    assert_eq!(orch.tick(&store, &mut ctrl), TickOutcome::Quiet);

    sim.tick(&mut store, 2, &[primary]);
    let restored = match orch.tick(&store, &mut ctrl) {
        TickOutcome::Restored { revived_gbps, .. } => revived_gbps,
        other => panic!("expected restoration, got {other:?}"),
    };
    assert!(restored > 0);
    let live_before = orch.live_restoration().to_vec();

    // The transport redelivers tick 2's samples verbatim (duplicate) and
    // tick 1's healthy samples (stale). The store drops both classes;
    // the next orchestrator tick must be a no-op, not a second
    // restoration and not a spurious repair.
    for fiber in 0..g.num_edges() {
        let fiber = flexwan::topo::graph::EdgeId(fiber as u32);
        store.ingest(TelemetrySample {
            fiber,
            tick: 2,
            rx_power_dbm: if fiber == primary { -60.0 } else { -3.0 },
        });
        store.ingest(TelemetrySample {
            fiber,
            tick: 1,
            rx_power_dbm: -3.0,
        });
    }
    assert!(
        store.stale_dropped() > 0,
        "store must count dropped samples"
    );
    assert_eq!(orch.tick(&store, &mut ctrl), TickOutcome::Quiet);
    assert_eq!(
        orch.live_restoration(),
        &live_before[..],
        "duplicate telemetry changed the restoration set"
    );

    // The cut persisting across later ticks is equally idempotent.
    sim.tick(&mut store, 3, &[primary]);
    assert_eq!(orch.tick(&store, &mut ctrl), TickOutcome::Quiet);
}

#[test]
fn stale_healthy_sample_does_not_unrestore_a_cut() {
    let (g, ip, cfg) = backbone();
    let (mut ctrl, mut orch, mut store, primary) = closed_loop(&g, &ip, &cfg);
    let sim = TelemetrySim::new(&g);

    // Healthy history, then the cut.
    for t in 1..=4 {
        sim.tick(&mut store, t, &[]);
        orch.tick(&store, &mut ctrl);
    }
    sim.tick(&mut store, 5, &[primary]);
    assert!(matches!(
        orch.tick(&store, &mut ctrl),
        TickOutcome::Restored { .. }
    ));

    // A healthy reading from BEFORE the cut arrives late. If the store
    // accepted it as current, the detector would see a repair and the
    // orchestrator would tear down a restoration that is still needed.
    store.ingest(TelemetrySample {
        fiber: primary,
        tick: 3,
        rx_power_dbm: -3.0,
    });
    assert_eq!(orch.tick(&store, &mut ctrl), TickOutcome::Quiet);
    assert!(
        !orch.live_restoration().is_empty(),
        "stale healthy sample un-restored a live cut"
    );
    assert!(orch.active_cuts().contains(&primary));
}

#[test]
fn reordered_telemetry_converges_to_the_newest_tick() {
    let (g, ip, cfg) = backbone();
    let (mut ctrl, mut orch, mut store, primary) = closed_loop(&g, &ip, &cfg);
    let sim = TelemetrySim::new(&g);

    sim.tick(&mut store, 1, &[]);
    orch.tick(&store, &mut ctrl);
    sim.tick(&mut store, 2, &[primary]);
    assert!(matches!(
        orch.tick(&store, &mut ctrl),
        TickOutcome::Restored { .. }
    ));

    // Ticks 4 (repaired) and 3 (still cut) arrive out of order. The
    // store keeps tick 4 and drops tick 3 as stale, so the loop sees
    // exactly one repair and no cut/repair flapping.
    sim.tick(&mut store, 4, &[]);
    sim.tick(&mut store, 3, &[primary]);
    match orch.tick(&store, &mut ctrl) {
        TickOutcome::Repaired { fibers, .. } => assert_eq!(fibers, vec![primary]),
        other => panic!("expected repair, got {other:?}"),
    }
    assert!(orch.live_restoration().is_empty());
    assert_eq!(orch.tick(&store, &mut ctrl), TickOutcome::Quiet);
}
