//! Validates the scalable planning heuristic against the exact
//! Algorithm 1 MIP on randomized small instances (DESIGN.md §3.2) — the
//! same methodology the paper uses against its Gurobi optimum.

use flexwan::core::planning::{plan, solve_exact, PlannerConfig};
use flexwan::core::Scheme;
use flexwan::optical::spectrum::SpectrumGrid;
use flexwan::solver::SolveOptions;
use flexwan::topo::graph::Graph;
use flexwan::topo::ip::IpTopology;
use flexwan_util::rng::ChaCha8Rng;

/// Objective value of a heuristic plan under the paper's objective.
fn heuristic_objective(p: &flexwan::core::planning::Plan, epsilon: f64) -> f64 {
    p.wavelengths
        .iter()
        .map(|w| 1.0 + epsilon * w.format.spacing.ghz())
        .sum()
}

/// A random 3-node instance with 1–2 links and small spectrum.
fn random_instance(seed: u64) -> (Graph, IpTopology, PlannerConfig) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut g = Graph::new();
    let a = g.add_node("a");
    let b = g.add_node("b");
    let c = g.add_node("c");
    g.add_edge(a, b, rng.gen_range(100u32..800));
    g.add_edge(b, c, rng.gen_range(100u32..800));
    g.add_edge(a, c, rng.gen_range(200u32..1500));
    let mut ip = IpTopology::new();
    let links = rng.gen_range(1u32..=2);
    for _ in 0..links {
        let (src, dst) = match rng.gen_range(0u32..3) {
            0 => (a, b),
            1 => (b, c),
            _ => (a, c),
        };
        ip.add_link(src, dst, 100 * rng.gen_range(1u64..=5));
    }
    let cfg = PlannerConfig {
        grid: SpectrumGrid::new(rng.gen_range(12u32..18)),
        k_paths: 2,
        ..Default::default()
    };
    (g, ip, cfg)
}

#[test]
fn heuristic_matches_exact_when_both_feasible() {
    let opts = SolveOptions {
        max_nodes: 50_000,
        ..Default::default()
    };
    let mut compared = 0;
    for seed in 0..18u64 {
        let (g, ip, cfg) = random_instance(seed);
        for scheme in [Scheme::FlexWan, Scheme::Radwan] {
            let exact = solve_exact(scheme, &g, &ip, &cfg, &opts);
            let heur = plan(scheme, &g, &ip, &cfg);
            match exact {
                Some(e) => {
                    assert!(
                        heur.is_feasible(),
                        "seed {seed} {scheme}: exact feasible (obj {:.3}) but heuristic unmet {:?}",
                        e.objective,
                        heur.unmet
                    );
                    let h_obj = heuristic_objective(&heur, cfg.epsilon);
                    // The heuristic must be within 30 % of the optimum and
                    // is usually equal on these small instances.
                    assert!(
                        h_obj <= e.objective * 1.3 + 1e-9,
                        "seed {seed} {scheme}: heuristic {h_obj:.3} vs exact {:.3}",
                        e.objective
                    );
                    compared += 1;
                }
                None => {
                    // Exact infeasible ⇒ the heuristic may not fully
                    // provision either (it can never do better than the
                    // exact model allows).
                    assert!(
                        !heur.is_feasible(),
                        "seed {seed} {scheme}: exact infeasible but heuristic claims feasible"
                    );
                }
            }
        }
    }
    assert!(
        compared >= 12,
        "only {compared} feasible comparisons — fixtures too tight"
    );
}

#[test]
fn heuristic_equals_exact_transponder_count_on_single_link() {
    // With one link and ample spectrum the heuristic's per-link DP is
    // exact, so the counts must match exactly.
    let opts = SolveOptions {
        max_nodes: 50_000,
        ..Default::default()
    };
    for seed in 100..110u64 {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        g.add_edge(a, b, rng.gen_range(100u32..1800));
        let mut ip = IpTopology::new();
        ip.add_link(a, b, 100 * rng.gen_range(1u64..=6));
        let cfg = PlannerConfig {
            grid: SpectrumGrid::new(24),
            k_paths: 1,
            ..Default::default()
        };
        let exact =
            solve_exact(Scheme::FlexWan, &g, &ip, &cfg, &opts).expect("ample spectrum is feasible");
        let heur = plan(Scheme::FlexWan, &g, &ip, &cfg);
        assert_eq!(
            heur.transponder_count(),
            exact.transponder_count(),
            "seed {seed}"
        );
        let h_obj = heuristic_objective(&heur, cfg.epsilon);
        assert!(
            (h_obj - exact.objective).abs() < 1e-6,
            "seed {seed}: {h_obj} vs {}",
            exact.objective
        );
    }
}
